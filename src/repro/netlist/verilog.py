"""A frontend for a synthesizable Verilog subset (paper SS6: "we derived
our Verilog frontend from Yosys's ... extended to support basic system
calls such as $display and $stop").

Supported subset - enough for single-clock, closed (test-driver-wrapped)
designs like the paper's Fig. 13 counter:

* ``module`` with no ports (closed designs),
* ``wire``/``reg`` declarations with ranges, initializers, and memories
  (``reg [15:0] mem [0:255];``),
* ``parameter NAME = value;`` compile-time constants,
* ``assign`` continuous assignments,
* one ``always @(posedge <clk>)`` block (single-clock designs) with
  non-blocking assignments, ``if``/``else``, ``begin``/``end``, memory
  writes, ``$display``/``$write``, ``$finish``/``$stop``,
* expressions: sized/unsized literals, identifiers, bit/part selects,
  memory reads, concatenation ``{a, b}`` and replication ``{4{x}}``,
  unary ``~ ! - & | ^``, binary arithmetic/logic/shift/compare, ternary.

Semantics deviations from full IEEE 1800 are the builder's rules: widths
extend to the widest operand (zero-extension; all arithmetic unsigned),
``>>>`` is arithmetic shift right.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .builder import CircuitBuilder, MemoryHandle, Signal
from .ir import Circuit, CircuitError


class VerilogError(CircuitError):
    """Raised on parse or elaboration errors, with line info."""


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<sized>\d+'[bodh][0-9a-fA-F_xzXZ?]+)
  | (?P<number>\d[\d_]*)
  | (?P<ident>[A-Za-z_$][A-Za-z0-9_$]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<op><<<|>>>|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>=?:;,.#(){}\[\]@])
""", re.VERBOSE | re.DOTALL)


@dataclass
class Token:
    kind: str
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if not m:
            raise VerilogError(f"line {line}: cannot tokenize "
                               f"{source[pos:pos + 20]!r}")
        text = m.group(0)
        kind = m.lastgroup or "op"
        if kind != "ws":
            tokens.append(Token(kind, text, line))
        line += text.count("\n")
        pos = m.end()
    tokens.append(Token("eof", "", line))
    return tokens


def parse_literal(text: str) -> tuple[int, int | None]:
    """Parse a Verilog literal -> (value, width or None if unsized)."""
    if "'" not in text:
        return int(text.replace("_", "")), None
    width_str, rest = text.split("'", 1)
    base_char = rest[0].lower()
    digits = rest[1:].replace("_", "")
    base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_char]
    digits = digits.replace("x", "0").replace("z", "0").replace("?", "0")
    value = int(digits, base) if digits else 0
    return value, int(width_str)


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------
@dataclass
class Decl:
    kind: str                 # "wire" | "reg"
    name: str
    width: int
    init: int = 0
    depth: int | None = None  # memories
    direction: str | None = None  # "input" | "output" | None


@dataclass
class Assign:
    target: str
    expr: "Expr"


@dataclass
class NonBlocking:
    target: str
    index: "Expr | None"      # memory write or bit-select target
    expr: "Expr"
    line: int


@dataclass
class SysCall:
    name: str                 # display/write/finish/stop
    fmt: str | None
    args: list["Expr"]
    line: int


@dataclass
class If:
    cond: "Expr"
    then: list
    other: list


@dataclass
class For:
    """A constant-bound loop, unrolled at elaboration time."""

    var: str
    start: "Expr"
    bound: "Expr"
    body: list
    line: int


Stmt = NonBlocking | SysCall | If | For


@dataclass
class Expr:
    kind: str                 # lit/ident/index/slice/unary/binary/ternary/concat/repl/memrd
    line: int = 0
    value: int = 0
    width: int | None = None
    name: str = ""
    op: str = ""
    args: list["Expr"] = field(default_factory=list)
    lo: int = 0
    hi: int = 0


@dataclass
class Instance:
    """A submodule instantiation with named port connections."""

    module: str
    name: str
    conns: dict[str, "Expr"]
    line: int


@dataclass
class Module:
    name: str
    params: dict[str, int]
    decls: dict[str, Decl]
    assigns: list[Assign]
    always: list[Stmt]
    clock: str | None = None
    ports: list[str] = field(default_factory=list)
    instances: list[Instance] = field(default_factory=list)
    #: combinational ``always @(*)`` blocks (blocking assignments)
    comb: list[list[Stmt]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.params: dict[str, int] = {}

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise VerilogError(
                f"line {tok.line}: expected {text!r}, found {tok.text!r}"
            )
        return tok

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.pos += 1
            return True
        return False

    # -- module ------------------------------------------------------------
    def parse_module(self) -> Module:
        self.params = {}
        self.expect("module")
        name = self.next().text
        ports: list[str] = []
        decls: dict[str, Decl] = {}
        comb: list[list[Stmt]] = []
        if self.accept("("):
            while not self.accept(")"):
                tok = self.peek()
                if tok.text in ("input", "output"):
                    # ANSI-style port declaration.
                    direction = self.next().text
                    self.accept("wire") or self.accept("reg")
                    width = self._parse_range()
                    pname = self.next().text
                    decls[pname] = Decl("wire", pname, width,
                                        direction=direction)
                    ports.append(pname)
                else:
                    ports.append(self.next().text)
                self.accept(",")
        self.expect(";")
        assigns: list[Assign] = []
        always: list[Stmt] = []
        instances: list[Instance] = []
        clock = None
        while self.peek().text != "endmodule":
            tok = self.peek()
            if tok.text == "parameter" or tok.text == "localparam":
                self.next()
                pname = self.next().text
                self.expect("=")
                self.params[pname] = self._const_expr()
                self.expect(";")
            elif tok.text in ("wire", "reg"):
                for decl in self._parse_decl():
                    decls[decl.name] = decl
            elif tok.text in ("integer", "genvar"):
                self.next()
                while True:
                    self.next()  # loop-variable name; value bound by for
                    if not self.accept(","):
                        break
                self.expect(";")
            elif tok.text in ("input", "output"):
                direction = self.next().text
                self.accept("wire") or self.accept("reg")
                width = self._parse_range()
                while True:
                    pname = self.next().text
                    kind = "reg" if direction == "output" and \
                        pname in decls and decls[pname].kind == "reg" \
                        else "wire"
                    decls[pname] = Decl(kind, pname, width,
                                        direction=direction)
                    if pname not in ports:
                        ports.append(pname)
                    if not self.accept(","):
                        break
                self.expect(";")
            elif tok.text == "assign":
                self.next()
                target = self.next().text
                self.expect("=")
                assigns.append(Assign(target, self.parse_expr()))
                self.expect(";")
            elif tok.text == "always":
                kind, got_clock, stmts = self._parse_always()
                if kind == "comb":
                    comb.append(stmts)
                elif always:
                    raise VerilogError(
                        f"line {tok.line}: only one clocked always block "
                        "per module is supported (single-clock designs)"
                    )
                else:
                    clock, always = got_clock, stmts
            elif tok.text == "initial":
                raise VerilogError(
                    f"line {tok.line}: initial blocks are not supported; "
                    "use declaration initializers"
                )
            elif tok.kind == "ident":
                instances.append(self._parse_instance())
            else:
                raise VerilogError(
                    f"line {tok.line}: unexpected {tok.text!r}"
                )
        self.expect("endmodule")
        return Module(name, dict(self.params), decls, assigns, always,
                      clock, ports, instances, comb)

    def _parse_instance(self) -> Instance:
        tok = self.next()
        module_name = tok.text
        if self.accept("#"):
            raise VerilogError(
                f"line {tok.line}: instance parameter overrides are not "
                "supported; specialize the module with its own parameters"
            )
        inst_name = self.next().text
        self.expect("(")
        conns: dict[str, Expr] = {}
        while not self.accept(")"):
            self.expect(".")
            port = self.next().text
            self.expect("(")
            conns[port] = self.parse_expr()
            self.expect(")")
            self.accept(",")
        self.expect(";")
        return Instance(module_name, inst_name, conns, tok.line)

    def _const_expr(self) -> int:
        expr = self.parse_expr()
        return _eval_const(expr, self.params)

    def _parse_range(self) -> int:
        """Parse optional [msb:lsb]; returns bit width."""
        if not self.accept("["):
            return 1
        msb = self._const_expr()
        self.expect(":")
        lsb = self._const_expr()
        self.expect("]")
        if lsb != 0:
            raise VerilogError("only [msb:0] ranges are supported")
        return msb - lsb + 1

    def _parse_decl(self) -> list[Decl]:
        kind = self.next().text
        width = self._parse_range()
        out = []
        while True:
            name = self.next().text
            depth = None
            init = 0
            if self.accept("["):
                lo = self._const_expr()
                self.expect(":")
                hi = self._const_expr()
                self.expect("]")
                depth = abs(hi - lo) + 1
            if self.accept("="):
                init = self._const_expr()
            out.append(Decl(kind, name, width, init, depth))
            if not self.accept(","):
                break
        self.expect(";")
        return out

    def _parse_always(self) -> tuple[str, str | None, list[Stmt]]:
        """Returns ("clocked", clk, stmts) or ("comb", None, stmts)."""
        self.expect("always")
        self.expect("@")
        if self.accept("*"):
            return "comb", None, self._parse_stmt_block(comb=True)
        self.expect("(")
        if self.accept("*"):
            self.expect(")")
            return "comb", None, self._parse_stmt_block(comb=True)
        self.expect("posedge")
        clock = self.next().text
        self.expect(")")
        return "clocked", clock, self._parse_stmt_block()

    def _parse_stmt_block(self, comb: bool = False) -> list[Stmt]:
        if self.accept("begin"):
            stmts = []
            while not self.accept("end"):
                stmts.extend(self._parse_stmt(comb))
            return stmts
        return self._parse_stmt(comb)

    def _parse_stmt(self, comb: bool = False) -> list[Stmt]:
        tok = self.peek()
        if tok.text == "case":
            return [self._parse_case(comb)]
        if tok.text == "if":
            self.next()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then = self._parse_stmt_block(comb)
            other: list[Stmt] = []
            if self.accept("else"):
                other = self._parse_stmt_block(comb)
            return [If(cond, then, other)]
        if tok.text == "for":
            return [self._parse_for(comb)]
        if tok.text in ("$display", "$write"):
            self.next()
            self.expect("(")
            fmt_tok = self.next()
            if fmt_tok.kind != "string":
                raise VerilogError(
                    f"line {fmt_tok.line}: $display needs a format string"
                )
            fmt = fmt_tok.text[1:-1]
            args = []
            while self.accept(","):
                args.append(self.parse_expr())
            self.expect(")")
            self.expect(";")
            return [SysCall(tok.text[1:], fmt, args, tok.line)]
        if tok.text in ("$finish", "$stop"):
            self.next()
            if self.accept("("):
                self.expect(")")
            self.expect(";")
            return [SysCall(tok.text[1:], None, [], tok.line)]
        # Assignment: name [ [index] ] (<=|=) expr ;
        name = self.next().text
        index: Expr | None = None
        if self.accept("["):
            index = self.parse_expr()
            self.expect("]")
        self.expect("=" if comb else "<=")
        expr = self.parse_expr()
        self.expect(";")
        return [NonBlocking(name, index, expr, tok.line)]

    def _parse_for(self, comb: bool = False) -> Stmt:
        """``for (i = a; i < b; i = i + 1) ...`` with constant bounds,
        unrolled during elaboration."""
        tok = self.expect("for")
        self.expect("(")
        var = self.next().text
        self.expect("=")
        start = self.parse_expr()
        self.expect(";")
        cond_var = self.next().text
        if cond_var != var:
            raise VerilogError(
                f"line {tok.line}: for-loop condition must test {var!r}"
            )
        self.expect("<")
        bound = self.parse_expr()
        self.expect(";")
        step_var = self.next().text
        self.expect("=")
        step_lhs = self.next().text
        self.expect("+")
        step_amt = self.next().text
        if step_var != var or step_lhs != var or step_amt != "1":
            raise VerilogError(
                f"line {tok.line}: only `{var} = {var} + 1` steps are "
                "supported"
            )
        self.expect(")")
        body = self._parse_stmt_block(comb)
        return For(var, start, bound, body, tok.line)

    def _parse_case(self, comb: bool = False) -> Stmt:
        """Parse ``case (subject) labels: stmts ... endcase`` and desugar
        into a priority if/else chain (full-case, no overlap semantics -
        matching synthesis of a unique case without a parallel pragma)."""
        tok = self.expect("case")
        self.expect("(")
        subject = self.parse_expr()
        self.expect(")")
        arms: list[tuple[list[Expr] | None, list[Stmt]]] = []
        while not self.accept("endcase"):
            if self.accept("default"):
                self.expect(":")
                arms.append((None, self._parse_stmt_block(comb)))
                continue
            labels = [self.parse_expr()]
            while self.accept(","):
                labels.append(self.parse_expr())
            self.expect(":")
            arms.append((labels, self._parse_stmt_block(comb)))

        # Desugar, last arm first.
        chain: list[Stmt] = []
        for labels, stmts in reversed(arms):
            if labels is None:
                chain = list(stmts)
                continue
            cond: Expr | None = None
            for label in labels:
                eq = Expr("binary", tok.line, op="==",
                          args=[subject, label])
                cond = eq if cond is None else Expr(
                    "binary", tok.line, op="||", args=[cond, eq])
            chain = [If(cond, list(stmts), chain)]
        if not chain:
            raise VerilogError(f"line {tok.line}: empty case statement")
        return chain[0]

    # -- expressions ---------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self._ternary()

    def _ternary(self) -> Expr:
        cond = self._binary(0)
        if self.accept("?"):
            then = self._ternary()
            self.expect(":")
            other = self._ternary()
            return Expr("ternary", cond.line, args=[cond, then, other])
        return cond

    _PRECEDENCE = [
        ["||"], ["&&"], ["|"], ["^"], ["&"],
        ["==", "!="], ["<", "<=", ">", ">="],
        ["<<", ">>", ">>>", "<<<"],
        ["+", "-"], ["*", "/", "%"],
    ]

    def _binary(self, level: int) -> Expr:
        if level >= len(self._PRECEDENCE):
            return self._unary()
        lhs = self._binary(level + 1)
        while self.peek().text in self._PRECEDENCE[level]:
            op = self.next().text
            rhs = self._binary(level + 1)
            lhs = Expr("binary", lhs.line, op=op, args=[lhs, rhs])
        return lhs

    def _unary(self) -> Expr:
        tok = self.peek()
        if tok.text in ("~", "!", "-", "&", "|", "^"):
            self.next()
            operand = self._unary()
            return Expr("unary", tok.line, op=tok.text, args=[operand])
        return self._primary()

    def _primary(self) -> Expr:
        tok = self.next()
        if tok.text == "(":
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if tok.text == "{":
            first = self.parse_expr()
            if self.accept("{"):  # replication {N{expr}}
                count = _eval_const(first, self.params)
                inner = self.parse_expr()
                self.expect("}")
                self.expect("}")
                return Expr("repl", tok.line, value=count, args=[inner])
            parts = [first]
            while self.accept(","):
                parts.append(self.parse_expr())
            self.expect("}")
            return Expr("concat", tok.line, args=parts)
        if tok.kind == "sized":
            value, width = parse_literal(tok.text)
            return Expr("lit", tok.line, value=value, width=width)
        if tok.kind == "number":
            value, _ = parse_literal(tok.text)
            return Expr("lit", tok.line, value=value, width=None)
        if tok.kind == "ident":
            name = tok.text
            if name in self.params:
                return Expr("lit", tok.line, value=self.params[name],
                            width=None)
            expr = Expr("ident", tok.line, name=name)
            while self.accept("["):
                first = self.parse_expr()
                if self.accept(":"):
                    hi = _eval_const(first, self.params)
                    lo = self._const_expr()
                    self.expect("]")
                    expr = Expr("slice", tok.line, args=[expr],
                                lo=lo, hi=hi)
                else:
                    self.expect("]")
                    expr = Expr("index", tok.line, args=[expr, first])
            return expr
        raise VerilogError(f"line {tok.line}: unexpected {tok.text!r}")


def _assigned_names(stmts) -> dict[str, None]:
    """All assignment targets in a statement tree.

    Returned as insertion-ordered dict keys (first-assignment order)
    rather than a set: callers iterate the result while elaborating ops,
    and elaboration order must not depend on PYTHONHASHSEED or
    ``Circuit.fingerprint`` would differ across processes.
    """
    out: dict[str, None] = {}
    for stmt in stmts:
        if isinstance(stmt, NonBlocking):
            out[stmt.target] = None
        elif isinstance(stmt, If):
            out.update(_assigned_names(stmt.then))
            out.update(_assigned_names(stmt.other))
        elif isinstance(stmt, For):
            out.update(_assigned_names(stmt.body))
    return out


def _eval_const(expr: Expr, params: dict[str, int]) -> int:
    if expr.kind == "lit":
        return expr.value
    if expr.kind == "ident" and expr.name in params:
        return params[expr.name]
    if expr.kind == "unary" and expr.op == "-":
        return -_eval_const(expr.args[0], params)
    if expr.kind == "binary":
        a = _eval_const(expr.args[0], params)
        b = _eval_const(expr.args[1], params)
        ops = {"+": a + b, "-": a - b, "*": a * b,
               "<<": a << b, ">>": a >> b}
        if expr.op in ops:
            return ops[expr.op]
    raise VerilogError(
        f"line {expr.line}: expected a compile-time constant"
    )


# ---------------------------------------------------------------------------
# Elaborator
# ---------------------------------------------------------------------------
class Elaborator:
    """Turns a parsed module into a :class:`Circuit` via the builder."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.builder = CircuitBuilder(module.name)
        self.regs: dict[str, Signal] = {}
        self.memories: dict[str, MemoryHandle] = {}
        self.assign_exprs: dict[str, Expr] = {}
        self.cache: dict[str, Signal] = {}
        self._resolving: set[str] = set()
        self._bindings: dict[str, int] = {}  # unrolled for-loop variables

    def elaborate(self) -> Circuit:
        m = self.builder
        module = self.module
        for assign in module.assigns:
            if assign.target in self.assign_exprs:
                raise VerilogError(
                    f"multiple drivers for wire {assign.target!r}"
                )
            self.assign_exprs[assign.target] = assign.expr
        # Targets of combinational always blocks are wires, not state,
        # however they were declared.
        self._comb_block_of: dict[str, int] = {}
        for index, block in enumerate(module.comb):
            for target in _assigned_names(block):
                if target in self._comb_block_of or \
                        target in self.assign_exprs:
                    raise VerilogError(
                        f"multiple drivers for {target!r}"
                    )
                self._comb_block_of[target] = index
        for decl in module.decls.values():
            if decl.depth is not None:
                self.memories[decl.name] = m.memory(
                    decl.name, decl.width, decl.depth)
            elif decl.kind == "reg" and \
                    decl.name not in self._comb_block_of:
                self.regs[decl.name] = m.register(
                    decl.name, decl.width, decl.init)
        pending: dict[str, Signal] = {}
        self._walk(module.always, m.const(1, 1), pending)
        for name, value in pending.items():
            self.regs[name].next = value
        # Force-elaborate every continuous assignment and comb block so
        # undriven identifiers, combinational cycles, and latches are
        # diagnosed even when the outputs are otherwise unused (dead
        # logic is removed later by DCE).
        for name in self.assign_exprs:
            self.signal(name)
        for index in range(len(module.comb)):
            targets = _assigned_names(module.comb[index])
            if not any(t in self.cache for t in targets):
                self._elaborate_comb_block(index)
        return m.build()

    # -- name resolution ------------------------------------------------------
    def signal(self, name: str, line: int = 0) -> Signal:
        if name in self.regs:
            return self.regs[name]
        if name in self.cache:
            return self.cache[name]
        if name in self.assign_exprs:
            if name in self._resolving:
                raise VerilogError(
                    f"combinational cycle through wire {name!r}"
                )
            self._resolving.add(name)
            sig = self.expr(self.assign_exprs[name])
            decl = self.module.decls.get(name)
            if decl is not None:
                sig = self._fit(sig, decl.width)
            self._resolving.discard(name)
            self.cache[name] = sig
            return sig
        if name in getattr(self, "_comb_block_of", {}):
            self._elaborate_comb_block(self._comb_block_of[name])
            return self.cache[name]
        raise VerilogError(f"line {line}: unknown identifier {name!r}")

    def _elaborate_comb_block(self, index: int) -> None:
        """Elaborate one ``always @(*)`` block: blocking assignments with
        last-wins priority; every target must be covered on every path
        (no latches)."""
        key = f"%comb{index}"
        if key in self._resolving:
            raise VerilogError(
                f"combinational cycle through always @(*) block {index}"
            )
        self._resolving.add(key)
        block = self.module.comb[index]
        pending: dict[str, Signal] = {}
        self._walk_comb(block, self.builder.const(1, 1), pending)
        targets = _assigned_names(block)
        for target in targets:
            if target not in pending:
                raise VerilogError(
                    f"always @(*) target {target!r} is not assigned on "
                    "every path (latch inferred)"
                )
            decl = self.module.decls.get(target)
            sig = pending[target]
            if decl is not None:
                sig = self._fit(sig, decl.width)
            self.cache[target] = sig
        self._resolving.discard(key)

    def _walk_comb(self, stmts, enable, pending: dict) -> None:
        """Like _walk, but targets are wires: an If branch that assigns a
        target not yet assigned at this point has no base value - that is
        only an error if it survives to the end (checked by the caller),
        so branches must fully cover or the merge drops the name."""
        outer_scope = getattr(self, "_comb_scope", None)
        self._comb_scope = pending
        for stmt in stmts:
            if isinstance(stmt, NonBlocking):
                if stmt.index is not None:
                    raise VerilogError(
                        f"line {stmt.line}: memory writes are not allowed "
                        "in always @(*)"
                    )
                value = self.expr(stmt.expr)
                pending[stmt.target] = value
            elif isinstance(stmt, SysCall):
                self._syscall(stmt, enable)
            elif isinstance(stmt, For):
                self._unroll(stmt, enable, pending, self._walk_comb)
            elif isinstance(stmt, If):
                cond = self.expr(stmt.cond)
                cond = cond.any() if cond.width > 1 else cond
                then_env = dict(pending)
                self._walk_comb(stmt.then, enable & cond, then_env)
                else_env = dict(pending)
                self._walk_comb(stmt.other, enable & ~cond, else_env)
                self._comb_scope = pending
                # dict.fromkeys, not set union: mux/gensym creation
                # order must be hash-seed independent.
                for name in dict.fromkeys([*then_env, *else_env]):
                    if name in then_env and name in else_env:
                        t, f = then_env[name], else_env[name]
                        decl = self.module.decls.get(name)
                        width = decl.width if decl else max(t.width,
                                                            f.width)
                        t = self._fit(t, width)
                        f = self._fit(f, width)
                        pending[name] = t if t is f else \
                            self.builder.mux(cond, f, t)
                    # one-sided assignment without a prior base: drop -
                    # caller reports the latch if never completed.
                    elif name in pending:
                        pass  # keeps the pre-if value already in pending
        self._comb_scope = outer_scope

    def _fit(self, sig: Signal, width: int) -> Signal:
        if sig.width > width:
            return sig.trunc(width)
        if sig.width < width:
            return sig.zext(width)
        return sig

    # -- expressions -------------------------------------------------------
    def expr(self, e: Expr) -> Signal:
        m = self.builder
        if e.kind == "lit":
            # Unsized literals are 32 bits, as in IEEE 1800.
            width = e.width if e.width else max(32, e.value.bit_length())
            return m.const(e.value, width)
        if e.kind == "ident":
            if e.name in self._bindings:
                return m.const(self._bindings[e.name], 32)
            # Blocking-assignment semantics: inside an always @(*) walk,
            # a target assigned earlier in the block reads its pending
            # procedural value.
            pending = getattr(self, "_comb_scope", None)
            if pending is not None and e.name in pending:
                return pending[e.name]
            return self.signal(e.name, e.line)
        if e.kind == "index":
            base = e.args[0]
            if base.kind == "ident" and base.name in self.memories:
                return self.memories[base.name].read(self.expr(e.args[1]))
            sig = self.expr(base)
            idx = e.args[1]
            try:
                const = _eval_const(idx, self.module.params)
            except VerilogError:
                shifted = sig >> self.expr(idx)
                return shifted[0]
            return sig[const]
        if e.kind == "slice":
            sig = self.expr(e.args[0])
            return sig.bits(e.lo, e.hi - e.lo + 1)
        if e.kind == "concat":
            # Verilog lists MSB first; the builder wants LSB first.
            parts = [self.expr(p) for p in reversed(e.args)]
            return m.cat(*parts)
        if e.kind == "repl":
            inner = self.expr(e.args[0])
            return m.cat(*([inner] * e.value))
        if e.kind == "unary":
            a = self.expr(e.args[0])
            if e.op == "~":
                return ~a
            if e.op == "!":
                return ~a.any()
            if e.op == "-":
                return m.const(0, a.width) - a
            if e.op == "&":
                return a.all()
            if e.op == "|":
                return a.any()
            if e.op == "^":
                return a.parity()
        if e.kind == "binary":
            a = self.expr(e.args[0])
            b = self.expr(e.args[1])
            op = e.op
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op in ("/", "%"):
                raise VerilogError(
                    f"line {e.line}: division is not synthesizable here"
                )
            if op == "&":
                return a & b
            if op == "|":
                return a | b
            if op == "^":
                return a ^ b
            if op == "&&":
                return a.any() & b.any()
            if op == "||":
                return a.any() | b.any()
            if op == "==":
                return a == b
            if op == "!=":
                return a != b
            if op == "<":
                return a.ltu(b)
            if op == ">":
                return b.ltu(a)
            if op == "<=":
                return ~b.ltu(a)
            if op == ">=":
                return ~a.ltu(b)
            if op in ("<<", "<<<"):
                return self._shift(a, e.args[1], left=True)
            if op == ">>":
                return self._shift(a, e.args[1], left=False)
            if op == ">>>":
                return self._shift(a, e.args[1], left=False, arith=True)
        if e.kind == "ternary":
            cond = self.expr(e.args[0])
            then = self.expr(e.args[1])
            other = self.expr(e.args[2])
            return m.mux(cond.any() if cond.width > 1 else cond,
                         other, then)
        raise VerilogError(f"line {e.line}: cannot elaborate {e.kind}")

    def _shift(self, a: Signal, amount: Expr, left: bool,
               arith: bool = False) -> Signal:
        try:
            const = _eval_const(amount, self.module.params)
        except VerilogError:
            amt = self.expr(amount)
            if arith:
                return a.ashr(amt)
            return (a << amt) if left else (a >> amt)
        if arith:
            return a.ashr(const)
        return (a << const) if left else (a >> const)

    # -- always block ------------------------------------------------------
    def _walk(self, stmts: list[Stmt], enable: Signal,
              pending: dict[str, Signal]) -> None:
        """Walk statements; ``pending`` maps register name -> next value
        accumulated so far (registers hold by default).  The caller
        commits the final pending map to register next values."""
        for stmt in stmts:
            if isinstance(stmt, NonBlocking):
                self._non_blocking(stmt, enable, pending)
            elif isinstance(stmt, SysCall):
                self._syscall(stmt, enable)
            elif isinstance(stmt, For):
                self._unroll(stmt, enable, pending, self._walk)
            elif isinstance(stmt, If):
                cond = self.expr(stmt.cond)
                cond = cond.any() if cond.width > 1 else cond
                then_env = dict(pending)
                self._walk(stmt.then, enable & cond, then_env)
                else_env = dict(pending)
                self._walk(stmt.other, enable & ~cond, else_env)
                names = dict.fromkeys([*then_env, *else_env])
                for name in names:
                    reg = self.regs[name]
                    base = pending.get(name, reg)
                    t = then_env.get(name, base)
                    f = else_env.get(name, base)
                    if t is f:
                        pending[name] = t
                    else:
                        pending[name] = self.builder.mux(cond, f, t)

    def _unroll(self, stmt: For, enable: Signal, pending: dict,
                walker) -> None:
        """Unroll a constant-bound for loop, binding the loop variable as
        a compile-time constant per iteration."""
        env = {**self.module.params, **self._bindings}
        start = _eval_const(stmt.start, env)
        bound = _eval_const(stmt.bound, env)
        if bound - start > 4096:
            raise VerilogError(
                f"line {stmt.line}: for-loop unrolls to {bound - start} "
                "iterations; that cannot be intended"
            )
        saved = self._bindings.get(stmt.var)
        for value in range(start, bound):
            self._bindings[stmt.var] = value
            walker(stmt.body, enable, pending)
        if saved is None:
            self._bindings.pop(stmt.var, None)
        else:
            self._bindings[stmt.var] = saved

    def _non_blocking(self, stmt: NonBlocking, enable: Signal,
                      pending: dict[str, Signal]) -> None:
        value = self.expr(stmt.expr)
        if stmt.target in self.memories:
            mem = self.memories[stmt.target]
            if stmt.index is None:
                raise VerilogError(
                    f"line {stmt.line}: memory write needs an index"
                )
            addr = self.expr(stmt.index)
            mem.write(addr, self._fit(value, mem.width), enable)
            return
        if stmt.target not in self.regs:
            raise VerilogError(
                f"line {stmt.line}: non-blocking assignment to "
                f"non-register {stmt.target!r}"
            )
        if stmt.index is not None:
            raise VerilogError(
                f"line {stmt.line}: bit-select register writes are not "
                "supported; assign the whole register"
            )
        reg = self.regs[stmt.target]
        pending[stmt.target] = self._fit(value, reg.width)

    def _syscall(self, stmt: SysCall, enable: Signal) -> None:
        m = self.builder
        if stmt.name in ("display", "write"):
            args = [self.expr(a) for a in stmt.args]
            m.display(enable, stmt.fmt or "", *args)
        elif stmt.name in ("finish", "stop"):
            m.finish(enable)


# ---------------------------------------------------------------------------
# Hierarchy flattening
# ---------------------------------------------------------------------------
def _rename_expr(e: Expr, mapping: dict[str, str]) -> Expr:
    out = Expr(e.kind, e.line, value=e.value, width=e.width,
               name=mapping.get(e.name, e.name), op=e.op,
               args=[_rename_expr(a, mapping) for a in e.args],
               lo=e.lo, hi=e.hi)
    return out


def _rename_stmt(stmt: Stmt, mapping: dict[str, str]) -> Stmt:
    if isinstance(stmt, NonBlocking):
        return NonBlocking(
            mapping.get(stmt.target, stmt.target),
            _rename_expr(stmt.index, mapping) if stmt.index else None,
            _rename_expr(stmt.expr, mapping), stmt.line)
    if isinstance(stmt, SysCall):
        return SysCall(stmt.name, stmt.fmt,
                       [_rename_expr(a, mapping) for a in stmt.args],
                       stmt.line)
    if isinstance(stmt, If):
        return If(_rename_expr(stmt.cond, mapping),
                  [_rename_stmt(x, mapping) for x in stmt.then],
                  [_rename_stmt(x, mapping) for x in stmt.other])
    if isinstance(stmt, For):
        return For(stmt.var, _rename_expr(stmt.start, mapping),
                   _rename_expr(stmt.bound, mapping),
                   [_rename_stmt(x, mapping) for x in stmt.body],
                   stmt.line)
    raise VerilogError(f"cannot rename {type(stmt).__name__}")


def flatten(modules: dict[str, Module], top: str) -> Module:
    """Inline every instantiation below ``top`` into one flat module.

    Input ports become prefixed wires driven by the connection
    expression; output ports keep their (prefixed) internal drivers and
    the parent wire named in the connection is assigned from them.
    Identifiers gain an ``<instance>__`` prefix per hierarchy level.
    """
    if top not in modules:
        raise VerilogError(f"no module named {top!r}")

    flat = Module(top, dict(modules[top].params), {}, [], [],
                  modules[top].clock)

    def inline(module: Module, prefix: str) -> None:
        mapping = {name: prefix + name for name in module.decls}
        clock = module.clock
        if clock:
            mapping.setdefault(clock, clock)  # clocks stay global
        for decl in module.decls.values():
            if decl.direction == "input" and decl.name == module.clock:
                continue  # clocks are implicit in cycle-level semantics
            flat.decls[prefix + decl.name] = Decl(
                decl.kind, prefix + decl.name, decl.width, decl.init,
                decl.depth, None)
        for assign in module.assigns:
            flat.assigns.append(Assign(
                mapping.get(assign.target, assign.target),
                _rename_expr(assign.expr, mapping)))
        for stmt in module.always:
            flat.always.append(_rename_stmt(stmt, mapping))
        for block in module.comb:
            flat.comb.append([_rename_stmt(s, mapping) for s in block])
        for inst in module.instances:
            child = modules.get(inst.module)
            if child is None:
                raise VerilogError(
                    f"line {inst.line}: unknown module {inst.module!r}"
                )
            child_prefix = f"{prefix}{inst.name}__"
            inline(child, child_prefix)
            for port, expr in inst.conns.items():
                if port == child.clock:
                    continue  # implicit clock
                decl = child.decls.get(port)
                if decl is None or decl.direction is None:
                    raise VerilogError(
                        f"line {inst.line}: {inst.module}.{port} is not "
                        "a port"
                    )
                bound = _rename_expr(expr, mapping)
                if decl.direction == "input":
                    flat.assigns.append(
                        Assign(child_prefix + port, bound))
                else:
                    if bound.kind != "ident":
                        raise VerilogError(
                            f"line {inst.line}: output port {port!r} "
                            "must connect to a plain wire"
                        )
                    flat.assigns.append(Assign(
                        bound.name,
                        Expr("ident", inst.line,
                             name=child_prefix + port)))
            # unconnected inputs default to zero
            for decl in child.decls.values():
                if decl.direction == "input" and \
                        decl.name != child.clock and \
                        decl.name not in inst.conns:
                    flat.assigns.append(Assign(
                        child_prefix + decl.name,
                        Expr("lit", inst.line, value=0,
                             width=decl.width)))

    inline(modules[top], "")
    return flat


def parse_modules(source: str) -> dict[str, Module]:
    """Parse every module in a source file."""
    parser = Parser(source)
    modules: dict[str, Module] = {}
    while parser.peek().kind != "eof":
        module = parser.parse_module()
        modules[module.name] = module
    if not modules:
        raise VerilogError("no modules found")
    return modules


def parse_verilog(source: str, top: str | None = None) -> Circuit:
    """Parse and elaborate a Verilog-subset design into a circuit.

    Multiple modules are supported; the hierarchy below ``top`` (default:
    the unique module never instantiated by another) is flattened by
    inlining.
    """
    modules = parse_modules(source)
    if top is None:
        instantiated = {inst.module for m in modules.values()
                        for inst in m.instances}
        roots = [name for name in modules if name not in instantiated]
        if len(roots) != 1:
            raise VerilogError(
                f"cannot infer the top module (candidates: {roots}); "
                "pass top= explicitly"
            )
        top = roots[0]
    module = flatten(modules, top) if (len(modules) > 1
                                       or modules[top].instances) \
        else modules[top]
    if any(d.direction is not None for d in module.decls.values()):
        raise VerilogError(
            f"top module {top!r} has ports; Manticore compiles closed "
            "designs - wrap it in a test driver"
        )
    return Elaborator(module).elaborate()
