"""RTL netlist substrate: IR, builder API, Verilog frontend, golden
interpreter, and dependence-DAG utilities."""

from .builder import CircuitBuilder, MemoryHandle, RegisterSignal, Signal
from .dag import CircuitDag, sink_cones
from .interp import (
    NetlistInterpreter,
    SimulationAssertionError,
    SimulationResult,
    format_display,
    run_circuit,
)
from .serialize import circuit_from_dict, circuit_to_dict, copy_circuit
from .ir import (
    AssertEffect,
    Circuit,
    CircuitError,
    Display,
    Finish,
    Memory,
    Op,
    OpKind,
    Register,
    Wire,
    mask,
    to_signed,
    topological_order,
)

__all__ = [
    "AssertEffect",
    "Circuit",
    "CircuitBuilder",
    "CircuitDag",
    "CircuitError",
    "Display",
    "Finish",
    "Memory",
    "MemoryHandle",
    "NetlistInterpreter",
    "Op",
    "OpKind",
    "Register",
    "RegisterSignal",
    "Signal",
    "SimulationAssertionError",
    "SimulationResult",
    "Wire",
    "circuit_from_dict",
    "circuit_to_dict",
    "copy_circuit",
    "format_display",
    "mask",
    "run_circuit",
    "sink_cones",
    "to_signed",
    "topological_order",
]
