"""Fig. 5 / Fig. 15: measured parallel-simulation speed on a desktop and
a server, models 1 (synchronization only) and 2 (+ i-cache pressure).

Regenerates, per platform and per instructions-per-cycle size, the rate
curve over thread counts and the inset max-speedup table, and asserts the
paper's three regions: fine-grain collapse, medium-grain limited gains,
coarse-grain scaling (with possible super-linear model-2 speedup).
"""

from harness import print_table
from repro.perfmodel import (
    EPYC_7V73X,
    FIG5_SIZES,
    I7_9700K,
    scaling_curve,
    speedup_table,
)

PLATFORMS = {"desktop (i7-9700K)": I7_9700K, "server (EPYC 7V73X)": EPYC_7V73X}


def _all_curves():
    curves = {}
    for pname, platform in PLATFORMS.items():
        for n in FIG5_SIZES:
            for model in (1, 2):
                curves[(pname, n, model)] = scaling_curve(
                    platform, n, model,
                    max_threads=min(platform.cores, 64))
    return curves


def test_fig05_curves(benchmark):
    curves = benchmark(_all_curves)

    for pname, platform in PLATFORMS.items():
        rows = []
        for n in FIG5_SIZES:
            c1 = curves[(pname, n, 1)]
            c2 = curves[(pname, n, 2)]
            rows.append([
                f"{n:,}",
                round(c1.rates_khz[0], 1), round(c1.max_speedup, 2),
                c1.best_threads,
                round(c2.rates_khz[0], 1), round(c2.max_speedup, 2),
                c2.best_threads,
            ])
        print_table(
            f"Fig 5 ({pname}): rate and max speedup vs N instr/cycle",
            ["N", "m1 serial kHz", "m1 speedup", "m1 P*",
             "m2 serial kHz", "m2 speedup", "m2 P*"],
            rows)

    from repro.textplot import line_plot
    for pname in PLATFORMS:
        series = {}
        for n in FIG5_SIZES:
            curve = curves[(pname, n, 2)]
            series[f"N={n // 1000}k"] = list(
                zip(curve.threads, curve.rates_khz))
        print(line_plot(series, logy=True,
                        title=f"Fig 5 ({pname}, model 2): kHz vs threads"))

    # -- paper region assertions --------------------------------------
    for pname, platform in PLATFORMS.items():
        fine = curves[(pname, 3_500, 1)]
        # Region 1: steep drop from 1 to 2 processors.
        assert fine.rates_khz[1] < 0.7 * fine.rates_khz[0]
        assert fine.max_speedup == 1.0

        medium = curves[(pname, 35_000, 1)]
        # Region 2: limited benefit, then decline (inflection point).
        assert 1.0 < medium.max_speedup < 4.0
        assert medium.rates_khz[-1] < max(medium.rates_khz)

        coarse = curves[(pname, 3_500_000, 1)]
        # Region 3: parallelism pays, best at max threads.
        assert coarse.max_speedup > 4.0
        assert coarse.best_threads == medium.threads[-1] \
            or coarse.best_threads > medium.best_threads

    # Model 2 speedups exceed model 1 (serial suffers more from i-cache).
    for n in (350_000, 3_500_000):
        m1 = curves[("desktop (i7-9700K)", n, 1)]
        m2 = curves[("desktop (i7-9700K)", n, 2)]
        assert m2.max_speedup >= m1.max_speedup

    # Super-linear point: (i7, 3.5M) under model 2.
    assert curves[("desktop (i7-9700K)", 3_500_000, 2)].max_speedup > 8.0


def test_fig05_speedup_table(benchmark):
    rows = benchmark(lambda: speedup_table([I7_9700K, EPYC_7V73X]))
    print_table(
        "Fig 5 inset: maximum speedups",
        ["platform", "N", "model1", "model2"],
        [[r["platform"], f"{r['n_instrs']:,}", r["model1_speedup"],
          r["model2_speedup"]] for r in rows])
    # Larger designs offer increased opportunities for speedup.
    for platform in ("i7-9700K", "EPYC 7V73X"):
        speedups = [r["model1_speedup"] for r in rows
                    if r["platform"] == platform]
        assert speedups == sorted(speedups)
