"""Table 8 + Fig. 14: compile times, their per-phase breakdown, and the
split-graph sizes |E| / |V| (paper SSA.6).

Real measured times of our compiler's phases (the one genuinely
wall-clock-dependent experiment).  Paper shapes: most compile time is
spent parallelizing (partitioning) and scheduling; compile time grows
with design size; the split graph has |E| >> |V|.
"""

import time

from harness import BENCH_ORDER, PAPER_TABLE8, compile_design, print_table
from repro.baseline import SerialSimulator
from repro.designs import DESIGNS


def _compile_all():
    out = {}
    for name in BENCH_ORDER:
        res = compile_design(name)
        out[name] = res.report
    return out


def test_tab08_compile_times(benchmark):
    reports = benchmark(_compile_all)

    rows = []
    for name in BENCH_ORDER:
        r = reports[name]
        t = r.times
        rows.append([
            name, r.split_edges, r.split_processes, r.netlist_ops,
            round(t.total, 2), round(t.opt, 2), round(t.parallelize, 2),
            round(t.custom, 2), round(t.schedule, 2),
            round(t.regalloc, 2),
        ])
    print_table(
        "Table 8 + Fig 14: |E|, |V|, and compile-time breakdown (s)",
        ["bench", "|E|", "|V|", "ops", "total", "opt", "parallel",
         "custom", "schedule", "regalloc"], rows)

    print_table(
        "Table 8 (paper): |E|, |V|, LoC, compile s (Manticore, Verilator)",
        ["bench", "|E|", "|V|", "LoC", "manticore s", "verilator s"],
        [[n, *PAPER_TABLE8[n]] for n in BENCH_ORDER])

    # Same qualitative law as the paper: Manticore compile time tracks
    # the split-graph size across the suite (rank correlation).
    ours = [(reports[n].split_edges, reports[n].times.total)
            for n in BENCH_ORDER]
    by_edges = sorted(BENCH_ORDER,
                      key=lambda n: reports[n].split_edges)
    largest = by_edges[-3:]
    smallest = by_edges[:3]
    t_large = sum(reports[n].times.total for n in largest)
    t_small = sum(reports[n].times.total for n in smallest)
    assert t_large > t_small

    # Compile time grows with design size: the largest design costs more
    # than the smallest by an order of magnitude.
    assert reports["vta"].times.total > 5 * reports["jpeg"].times.total

    # The heavy phases are parallelization + custom functions +
    # scheduling (paper Fig. 14: prl and sch dominate), not lexing or
    # register allocation.
    for name in ("vta", "mc", "noc"):
        t = reports[name].times
        heavy = t.parallelize + t.custom + t.schedule
        assert heavy > 0.5 * t.total

    # Split graphs: more edges than nodes for the communication-heavy
    # designs (paper Table 8: |E| > |V| for all but tiny designs).
    big = [n for n in ("vta", "mc", "noc", "mm")
           if reports[n].split_edges > reports[n].split_processes]
    assert len(big) >= 2


def test_tab08_manticore_vs_verilator_compile(benchmark):
    """Manticore compiles slower than 'Verilator' (here: the baseline's
    setup work), but still in interactive time (paper SS7.8.3)."""
    def measure():
        out = {}
        # Use mid-size designs: the tiny jpeg compiles in ~10 ms, where
        # interpreter setup noise can invert the comparison.
        for name in ("mm", "noc"):
            t0 = time.perf_counter()
            SerialSimulator(DESIGNS[name].build())
            verilator = time.perf_counter() - t0
            manticore = compile_design(name).report.times.total
            out[name] = (manticore, verilator)
        return out

    times = benchmark(measure)
    print_table("Compile time: Manticore vs baseline setup (s)",
                ["bench", "manticore", "baseline"],
                [[n, round(m, 3), round(v, 3)]
                 for n, (m, v) in times.items()])
    for name, (manticore, verilator) in times.items():
        assert manticore > verilator, name  # the paper's trade-off
        assert manticore < 120.0      # but still minutes, not hours
