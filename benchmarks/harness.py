"""Shared infrastructure for the benchmark suite.

Each ``benchmarks/test_*.py`` regenerates one table or figure of the
paper's evaluation (see DESIGN.md's experiment index).  Compilations of
the nine designs are cached here so the many experiments that need them
(Table 3, Fig. 7, Fig. 9/10, Table 8) pay for each compile once per
session.
"""

from __future__ import annotations

import functools

from repro.baseline import (
    best_mt_rate_khz,
    instruction_estimate,
    macrotasks_for,
    modeled_serial_rate_khz,
)
from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import PROTOTYPE
from repro.perfmodel import EPYC_7V73X, I7_9700K, XEON_8272CL

#: Paper-measured frequency of the evaluated prototype (Table 2).
PROTOTYPE_MHZ = 475.0

#: Benchmarks in the paper's Table 3 column order.
BENCH_ORDER = ["vta", "mc", "noc", "mm", "rv32r", "cgra", "bc", "blur",
               "jpeg"]

PLATFORMS = {"i7": I7_9700K, "xeon": XEON_8272CL, "epyc": EPYC_7V73X}


#: In-session compile memos, keyed like the old ``lru_cache`` calls but
#: seedable by :func:`precompile` (batch ``compile_many`` fan-out).
_COMPILED: dict[tuple, object] = {}
_GRID_COMPILED: dict[tuple[str, int], object] = {}


def _prototype_options(max_cores=None, merge_strategy="balanced",
                       enable_custom_functions=True) -> CompilerOptions:
    return CompilerOptions(
        config=PROTOTYPE,
        max_cores=max_cores,
        merge_strategy=merge_strategy,
        enable_custom_functions=enable_custom_functions,
    )


def compile_design(name: str, max_cores: int | None = None,
                   merge_strategy: str = "balanced",
                   enable_custom_functions: bool = True):
    """Compile one registry design for the prototype grid (cached)."""
    key = (name, max_cores, merge_strategy, enable_custom_functions)
    if key not in _COMPILED:
        _COMPILED[key] = compile_circuit(
            circuit_of(name),
            _prototype_options(max_cores, merge_strategy,
                               enable_custom_functions))
    return _COMPILED[key]


@functools.lru_cache(maxsize=None)
def circuit_of(name: str):
    return DESIGNS[name].build()


def _grid_options(grid_side: int) -> CompilerOptions:
    from repro.machine import MachineConfig
    return CompilerOptions(
        config=MachineConfig(grid_x=grid_side, grid_y=grid_side))


def _grid_compile(name: str, grid_side: int):
    """Compile one design for a small square grid (cached)."""
    key = (name, grid_side)
    if key not in _GRID_COMPILED:
        _GRID_COMPILED[key] = compile_circuit(circuit_of(name),
                                              _grid_options(grid_side))
    return _GRID_COMPILED[key]


def precompile(names=None, jobs: int | None = None,
               grid_side: int | None = None) -> None:
    """Batch-compile a design set concurrently (``compile_many``) and
    seed the session memos, so figure sweeps and the engine benchmark pay
    one parallel fan-out instead of nine serial compiles.

    ``grid_side=None`` targets the prototype grid used by the table and
    figure experiments; an explicit side seeds the small-grid cache that
    :func:`machine_for` uses.  ``jobs=None`` means one worker per CPU.
    """
    from repro.compiler import compile_many

    names = list(BENCH_ORDER if names is None else names)
    if grid_side is None:
        memo, options = _COMPILED, _prototype_options()
        key_of = (lambda n: (n, None, "balanced", True))
    else:
        memo, options = _GRID_COMPILED, _grid_options(grid_side)
        key_of = (lambda n: (n, grid_side))
    missing = [n for n in names if key_of(n) not in memo]
    if not missing:
        return
    results = compile_many([circuit_of(n) for n in missing], options,
                           jobs=(-1 if jobs is None else jobs))
    for name, result in zip(missing, results):
        memo[key_of(name)] = result


def machine_for(name: str, engine: str = "strict", grid_side: int = 8,
                profiler=None):
    """Fresh :class:`~repro.machine.Machine` over a cached small-grid
    compile - the engine-comparison workhorse (each caller gets its own
    machine so strict/fast runs never share mutable state)."""
    from repro.machine import Machine, MachineConfig
    result = _grid_compile(name, grid_side)
    config = MachineConfig(grid_x=grid_side, grid_y=grid_side)
    return Machine(result.program, config, engine=engine,
                   profiler=profiler)


@functools.lru_cache(maxsize=None)
def macrotask_graph(name: str):
    return macrotasks_for(circuit_of(name))


@functools.lru_cache(maxsize=None)
def verilator_rates(name: str, platform_key: str) -> dict[str, float]:
    """Modeled serial (S) and best multithreaded (MT) rates in kHz."""
    platform = PLATFORMS[platform_key]
    circuit = circuit_of(name)
    serial = modeled_serial_rate_khz(circuit, platform)
    threads, mt = best_mt_rate_khz(macrotask_graph(name), platform)
    return {"S": serial, "MT": mt, "threads": threads}


def manticore_rate_khz(name: str) -> float:
    report = compile_design(name).report
    return report.simulated_rate_khz(PROTOTYPE_MHZ)


#: Core counts swept for Fig. 7 (and reused by Table 3's best-of sweep).
CORE_SWEEP = (1, 4, 9, 16, 36, 100, 225)


@functools.lru_cache(maxsize=None)
def vcpl_sweep(name: str) -> dict[int, dict]:
    """Compiler-predicted VCPL per core budget (Fig. 7 methodology)."""
    from repro.compiler import CompilerError
    out = {}
    for cores in CORE_SWEEP:
        try:
            report = compile_design(name, max_cores=cores).report
        except CompilerError:
            continue  # does not fit that few cores (imem overflow)
        out[cores] = {
            "vcpl": report.vcpl,
            "cores_used": report.cores_used,
            "rate": report.simulated_rate_khz(PROTOTYPE_MHZ),
        }
    return out


def best_manticore(name: str) -> dict:
    """Best (rate, cores, vcpl) over the core sweep."""
    sweep = vcpl_sweep(name)
    best_budget = max(sweep, key=lambda c: sweep[c]["rate"])
    entry = sweep[best_budget]
    return {"rate": entry["rate"], "cores": entry["cores_used"],
            "vcpl": entry["vcpl"], "budget": best_budget}


def print_table(title: str, headers: list[str],
                rows: list[list], fmt: str = "10.2f") -> None:
    """Render one experiment table to stdout (the bench deliverable)."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 10) for h in headers]
    print("  " + "".join(f"{h:>{w + 2}}" for h, w in zip(headers, widths)))
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:>{w + 2}{fmt[2:]}}")
            else:
                cells.append(f"{str(value):>{w + 2}}")
        print("  " + "".join(cells))


#: Paper Table 3 reference numbers (kHz) for shape comparison in
#: EXPERIMENTS.md.  (S, MT) per platform plus Manticore's 225-core rate.
PAPER_TABLE3 = {
    #        i7 S    i7 MT   xeon S  xeon MT  epyc S  epyc MT  manticore
    "vta":   (41.3, 160.2, 32.4, 94.9, 32.1, 146.9, 278.1),
    "mc":    (33.9, 127.2, 26.6, 68.9, 29.7, 120.8, 423.0),
    "noc":   (41.4, 80.5, 37.1, 41.5, 32.4, 106.0, 293.6),
    "mm":    (43.9, 83.0, 34.7, 52.3, 31.6, 95.2, 567.5),
    "rv32r": (96.6, 141.8, 97.3, 73.3, 109.2, 162.7, 221.0),
    "cgra":  (152.0, 146.2, 136.8, 74.3, 126.0, 167.8, 421.5),
    "bc":    (599.0, 354.4, 462.7, 190.6, 550.2, 370.6, 1562.0),
    "blur":  (726.7, 362.0, 532.6, 186.1, 430.5, 406.9, 1015.0),
    "jpeg":  (4246.0, 700.7, 3233.0, 590.6, 3627.0, 1239.0, 214.2),
}

#: Paper Table 4: Send counts (thousands), L vs B.
PAPER_TABLE4 = {
    "mm": (23.3, 8.5), "mc": (23.6, 3.9), "vta": (13.6, 9.8),
    "noc": (25.6, 16.6), "cgra": (18.9, 7.4), "rv32r": (16.9, 2.8),
    "bc": (7.7, 3.1), "blur": (5.0, 2.7), "jpeg": (1.0, 0.1),
}


#: Paper Table 8: |E|, |V|, Verilog LoC, and compile times (s).
PAPER_TABLE8 = {
    "vta":   (56142, 7037, 190818, 929, 153),
    "mc":    (52330, 9182, 30353, 777, 73),
    "noc":   (114364, 6927, 39363, 914, 203),
    "mm":    (89102, 6659, 64963, 518, 425),
    "rv32r": (60430, 4497, 31761, 357, 116),
    "cgra":  (57532, 4615, 104498, 468, 135),
    "bc":    (8135, 4630, 276, 143, 40),
    "blur":  (9649, 751, 3869, 42, 22),
    "jpeg":  (1005, 131, 6542, 16, 7),
}


def geomean(values: list[float]) -> float:
    import math
    return math.exp(sum(math.log(v) for v in values) / len(values))
