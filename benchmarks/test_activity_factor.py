"""Activity factors (paper SS9.3): "Manticore's performance is
independent of a design's activity factor", while ESSENT-class
conditional simulators win exactly when activity is low.

We build one parameterized design - a block of MAC lanes gated by a
divided enable (activity ~ 1/divisor) - and measure:

* the ESSENT-style simulator's measured activity factor and modeled rate
  (improves as activity falls),
* Manticore's compiled VCPL (identical across activity levels: the
  static BSP schedule executes all paths every Vcycle).
"""

from harness import print_table
from repro.baseline.essent import EssentSimulator
from repro.compiler import CompilerOptions, compile_circuit
from repro.machine import PROTOTYPE
from repro.netlist import CircuitBuilder, run_circuit
from repro.perfmodel import I7_9700K

CYCLES = 96
LANES = 12


def gated_design(divisor: int):
    """MAC lanes that only update one cycle in every ``divisor``."""
    m = CircuitBuilder(f"gated_{divisor}")
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)
    # The divider exists at every setting (identical structure; only the
    # wrap constant differs) so Manticore compiles the same netlist shape
    # and the VCPL comparison isolates the activity factor.
    div = m.register("div", 8)
    wrap = div == (divisor - 1)
    div.next = m.mux(wrap, (div + 1).trunc(8), m.const(0, 8))
    fire = wrap

    total = m.const(0, 32)
    for lane in range(LANES):
        acc = m.register(f"acc{lane}", 32)
        x = m.register(f"x{lane}", 16, init=(lane * 2531 + 7) & 0xFFFF)
        x.update(fire, (x * 31 + lane).trunc(16))
        prod = x.mul_wide(x).trunc(32)
        acc.update(fire, (acc + prod).trunc(32))
        total = (total ^ acc).trunc(32)

    shown = m.display_staged(cyc == CYCLES, "signature %x", total)
    m.finish(shown)
    return m.build()


def _measure():
    out = {}
    for divisor in (1, 4, 16):
        golden = run_circuit(gated_design(divisor), CYCLES + 50)
        essent = EssentSimulator(gated_design(divisor))
        stats = essent.run(CYCLES + 50)
        assert essent.displays == golden.displays  # semantic check
        result = compile_circuit(gated_design(divisor),
                                 CompilerOptions(config=PROTOTYPE))
        out[divisor] = {
            "activity": stats.activity_factor,
            "work": stats.work_factor,
            "essent_khz": essent.modeled_rate_khz(I7_9700K),
            "vcpl": result.report.vcpl,
        }
    return out


def test_activity_factor(benchmark):
    stats = benchmark(_measure)
    print_table(
        "Activity factors: ESSENT-style conditional eval vs Manticore",
        ["enable divisor", "activity", "work frac", "essent kHz",
         "manticore VCPL"],
        [[d, round(s["activity"], 2), round(s["work"], 2),
          round(s["essent_khz"], 1), s["vcpl"]]
         for d, s in sorted(stats.items())])

    # ESSENT-style simulation speeds up as activity falls...
    assert stats[16]["work"] < stats[4]["work"] < stats[1]["work"]
    assert stats[16]["essent_khz"] > 1.5 * stats[1]["essent_khz"]

    # ...while Manticore's VCPL is activity-independent (paper SS9.3):
    # the static schedule executes every path every Vcycle.
    vcpls = [s["vcpl"] for s in stats.values()]
    assert max(vcpls) - min(vcpls) <= 0.1 * max(vcpls)
