"""Fig. 8: the cost of going off-chip (paper SS7.7).

FIFO and RAM microbenchmarks on a 1x1 grid at 1 KiB / 64 KiB / 512 KiB,
one load + one store per Vcycle, measured with the machine model's
hardware performance counters.  Cycle counts are normalized to the 1 KiB
(scratchpad-resident) configuration; cache hit rates annotate each bar as
in the paper's figure.

Paper shapes asserted:
* 1 KiB fits the scratchpad -> no data-induced global stalls;
* FIFOs have excellent spatial locality -> high hit rate, mildly
  stall-limited even at 512 KiB;
* randomly-accessed RAMs slow down as off-chip accesses grow: the 512 KiB
  RAM is the worst configuration and much worse than the 512 KiB FIFO;
* even cache *hits* cost cycles (conservative stall on every access), so
  64 KiB runs slower than 1 KiB for both.
"""

from harness import print_table
from repro.compiler import CompilerOptions, compile_circuit
from repro.designs.micro import FIG8_SIZES, build_fifo, build_ram
from repro.machine import Machine, MachineConfig

CYCLES = 8192  # scaled stand-in for the paper's 16Mi Vcycles


def _run(builder, size_bytes):
    config = MachineConfig(grid_x=1, grid_y=1)
    circuit = builder(size_bytes, cycles=CYCLES)
    result = compile_circuit(circuit, CompilerOptions(config=config))
    machine = Machine(result.program, config)
    res = machine.run(CYCLES + 8)
    return {
        "cycles_per_vcycle": res.counters.total_cycles / res.vcycles,
        "stall_fraction": res.counters.stall_cycles
        / res.counters.total_cycles,
        "hit_rate": res.cache.hit_rate,
        "accesses": res.cache.accesses,
    }


def _sweep():
    out = {}
    for kind, builder in (("fifo", build_fifo), ("ram", build_ram)):
        for label, size in FIG8_SIZES:
            out[(kind, label)] = _run(builder, size)
    return out


def test_fig08_global_stall(benchmark):
    stats = benchmark(_sweep)

    for kind in ("fifo", "ram"):
        base = stats[(kind, "1KiB")]["cycles_per_vcycle"]
        rows = []
        for label, _size in FIG8_SIZES:
            s = stats[(kind, label)]
            rows.append([
                label,
                round(s["cycles_per_vcycle"], 1),
                round(s["cycles_per_vcycle"] / base, 2),
                round(100 * s["stall_fraction"], 1),
                round(s["hit_rate"], 3) if s["accesses"] else "-",
            ])
        print_table(f"Fig 8 ({kind.upper()}): machine cycles, normalized "
                    "to 1KiB", ["size", "cyc/Vcycle", "normalized",
                                "stall %", "hit rate"], rows)

    from repro.textplot import bar_chart
    for kind in ("fifo", "ram"):
        base = stats[(kind, "1KiB")]["cycles_per_vcycle"]
        print(bar_chart(
            {label: round(stats[(kind, label)]["cycles_per_vcycle"]
                          / base, 2) for label, _ in FIG8_SIZES},
            title=f"Fig 8 ({kind.upper()}): normalized machine cycles"))

    fifo = {label: stats[("fifo", label)] for label, _ in FIG8_SIZES}
    ram = {label: stats[("ram", label)] for label, _ in FIG8_SIZES}

    # 1 KiB: scratchpad-resident, negligible stalls.
    assert fifo["1KiB"]["stall_fraction"] < 0.05
    assert ram["1KiB"]["stall_fraction"] < 0.05

    # Hits still stall: 64 KiB is slower than 1 KiB for both.
    assert fifo["64KiB"]["cycles_per_vcycle"] > \
        1.5 * fifo["1KiB"]["cycles_per_vcycle"]
    assert ram["64KiB"]["cycles_per_vcycle"] > \
        1.5 * ram["1KiB"]["cycles_per_vcycle"]

    # FIFO locality: high hit rate even at 512 KiB.
    assert fifo["512KiB"]["hit_rate"] > 0.9

    # Random RAM: hit rate collapses at 512 KiB and the configuration is
    # the slowest overall - and clearly worse than the 512 KiB FIFO.
    assert ram["512KiB"]["hit_rate"] < 0.5
    assert ram["512KiB"]["cycles_per_vcycle"] > \
        1.2 * fifo["512KiB"]["cycles_per_vcycle"]
    # 64 KiB RAM fits the 128 KiB cache: hit rate stays high there.
    assert ram["64KiB"]["hit_rate"] > 0.85
