"""Service benchmark: jobs/s, latency, dedupe under zipfian tenants.

Drives an in-process :class:`repro.serve.SimulationServer` (thread
mode) with the deterministic zipfian workload from
``repro.serve.client.plan_load``: design popularity follows
``1/rank**s`` with ``s = 1.1``, tenants round-robin with one
higher-priority tenant — the fleet-level traffic shape the service
exists for.  Reported headlines:

* ``jobs_per_s``      - completed jobs over wall-clock;
* ``p50_s``/``p99_s`` - submit-to-terminal latency quantiles (includes
  queueing: the whole plan is submitted up front);
* ``cache_hit_rate``  - fraction of submissions served without a fresh
  compile (disk hits + in-flight shares);
* ``preempt_roundtrip_s`` - one forced preempt -> migrate -> resume
  round trip on a running job.

Gate: ``cache_hit_rate >= 0.5`` at zipf ``s = 1.1`` — if the
content-addressed dedupe stops absorbing a skewed workload, this
benchmark fails rather than quietly recompiling per tenant.

Run with::

    PYTHONPATH=src python benchmarks/bench_serve.py

Environment knobs: ``BENCH_SERVE_JOBS`` (default 40; CI smoke uses
fewer), ``BENCH_SERVE_WORKERS`` (default 2), ``BENCH_SERVE_ZIPF``
(default 1.1), ``BENCH_SERVE_SEED`` (default 0).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.machine.config import MachineConfig  # noqa: E402
from repro.serve import SimulationServer, plan_load  # noqa: E402

JOBS = int(os.environ.get("BENCH_SERVE_JOBS", "40"))
WORKERS = int(os.environ.get("BENCH_SERVE_WORKERS", "2"))
ZIPF_S = float(os.environ.get("BENCH_SERVE_ZIPF", "1.1"))
SEED = int(os.environ.get("BENCH_SERVE_SEED", "0"))
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
HIT_RATE_GATE = 0.5


async def _measure() -> dict:
    config = MachineConfig(grid_x=8, grid_y=8)
    plan = plan_load(JOBS, zipf_s=ZIPF_S, seed=SEED)
    async with SimulationServer(workers=WORKERS, mode="thread",
                                config=config,
                                engine_default="fast") as server:
        start = time.perf_counter()
        jobs = [await server.submit(tenant=entry["tenant"],
                                    design=entry["design"],
                                    engine=entry["engine"],
                                    priority=entry["priority"])
                for entry in plan]
        done = [await server.wait(job.id, timeout=3600) for job in jobs]
        elapsed = time.perf_counter() - start
        metrics = server.metrics_snapshot()

        # One forced preemption round trip on a fresh long-ish job.
        roundtrip_job = await server.submit(design="bc", engine="strict")
        preempt_s = None
        deadline = time.monotonic() + 600
        while time.monotonic() < deadline:
            if roundtrip_job.finished:
                break
            if roundtrip_job.state == "running" \
                    and server.preempt(roundtrip_job.id):
                preempt_start = time.perf_counter()
                while roundtrip_job.preemptions == 0 \
                        and not roundtrip_job.finished:
                    await asyncio.sleep(0.002)
                while roundtrip_job.state != "running" \
                        and not roundtrip_job.finished:
                    await asyncio.sleep(0.002)
                preempt_s = time.perf_counter() - preempt_start
                break
            await asyncio.sleep(0.002)
        await server.wait(roundtrip_job.id, timeout=3600)

    completed = sum(1 for job in done if job.state == "done")
    failed = [job for job in done if job.state != "done"]
    assert not failed, \
        f"{len(failed)} job(s) failed: {[j.error for j in failed]}"
    return {
        "jobs": JOBS,
        "workers": WORKERS,
        "zipf_s": ZIPF_S,
        "seed": SEED,
        "engine": "fast",
        "grid": "8x8",
        "elapsed_s": round(elapsed, 3),
        "jobs_per_s": round(completed / elapsed, 2),
        "p50_s": round(metrics["latency"]["p50_s"], 4),
        "p99_s": round(metrics["latency"]["p99_s"], 4),
        "mean_s": round(metrics["latency"]["mean_s"], 4),
        "cache_hit_rate": round(metrics["compile"]["hit_rate"], 3),
        "compiles": metrics["compile"]["compiles"],
        "tenants": len(metrics["tenants"]),
        "preempt_roundtrip_s": (None if preempt_s is None
                                else round(preempt_s, 4)),
        "hit_rate_gate": f">={HIT_RATE_GATE}",
    }


def main() -> int:
    result = asyncio.run(_measure())
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"serve: {result['jobs']} jobs x {result['workers']} workers "
          f"(zipf s={result['zipf_s']}): "
          f"{result['jobs_per_s']:.2f} jobs/s, "
          f"p50 {result['p50_s']:.3f}s p99 {result['p99_s']:.3f}s, "
          f"cache hit rate {result['cache_hit_rate']:.0%}, "
          f"{result['compiles']} compile(s)")
    if result["preempt_roundtrip_s"] is not None:
        print(f"serve: preempt->migrate->resume round trip "
              f"{result['preempt_roundtrip_s'] * 1000:.1f} ms")
    print(f"wrote {OUT_PATH}")
    if result["cache_hit_rate"] < HIT_RATE_GATE:
        print(f"FAIL: cache hit rate {result['cache_hit_rate']:.0%} < "
              f"{HIT_RATE_GATE:.0%} at zipf s={result['zipf_s']}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
