"""Table 2: hardware platforms (cores, clocks, SRAM, dates)."""

from harness import print_table
from repro.fpga import sram_capacity_mib
from repro.perfmodel import EPYC_7V73X, I7_9700K, TABLE2, XEON_8272CL


def test_tab02_platforms(benchmark):
    rows = benchmark(lambda: list(TABLE2))
    print_table("Table 2: hardware platforms",
                ["HW", "# cores", "GHz", "MiB", "date"],
                [list(r) for r in rows])

    assert rows[0] == ("i7-9700K", 8, "4.6-4.9", 14.5, "Q4 2018")
    assert rows[3][1] == 225  # Manticore core count

    # Platform cost models are consistent with the published columns.
    for platform, row in zip((I7_9700K, XEON_8272CL, EPYC_7V73X), rows):
        assert platform.cores == row[1]
        assert platform.sram_mib == row[3]
        lo, hi = (float(x) for x in row[2].split("-"))
        assert lo <= platform.freq_ghz <= hi

    # Manticore's SRAM column (~18.45 MiB for 225 cores) against our
    # capacity model.
    assert abs(sram_capacity_mib(225) - 18.45) / 18.45 < 0.1
