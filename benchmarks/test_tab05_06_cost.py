"""Tables 5 and 6: cloud cost analysis (paper SS7.9).

Table 5 encodes the Azure instance catalog.  Table 6 reproduces the
paper's arithmetic exactly - runtime and dollars for 1B and 10B RTL-cycle
simulations from the paper's published Table 3 rates - and then repeats
the analysis with *our* measured/modeled rates for the shape claims.
"""

from harness import BENCH_ORDER, PAPER_TABLE3, print_table
from repro.cost import D2_V4, D16_V4, HB120, INSTANCES, NP10S, estimate, workday_flags


def _paper_rates(name: str) -> dict[str, float]:
    i7s, _i7mt, xeons, xeonmt, _es, epycmt, manticore = PAPER_TABLE3[name]
    return {
        "D2 v4": xeons,        # serial Xeon
        "D16 v4": xeonmt,      # multithreaded Xeon
        "HB120rs v3": epycmt,  # multithreaded EPYC
        "NP10s": manticore,    # Manticore on the FPGA instance
    }


def test_tab05_instance_catalog(benchmark):
    rows = benchmark(lambda: [
        (i.name, i.dollars_per_hour, i.description)
        for i in (D2_V4, D16_V4, HB120, NP10S)
    ])
    print_table("Table 5: Azure instances", ["instance", "$/h", "role"],
                [list(r) for r in rows])
    assert INSTANCES["NP10s"].dollars_per_hour == 2.145
    assert INSTANCES["D2 v4"].dollars_per_hour == 0.115


def test_tab06_cost_of_long_runs(benchmark):
    def compute():
        out = {}
        for cycles in (1e9, 1e10):
            for name in BENCH_ORDER:
                for iname, rate in _paper_rates(name).items():
                    out[(cycles, name, iname)] = estimate(
                        INSTANCES[iname], rate, cycles)
        return out

    results = benchmark(compute)

    for cycles, label in ((1e9, "1B"), (1e10, "10B")):
        rows = []
        for name in BENCH_ORDER:
            row = [name]
            for iname in ("D2 v4", "D16 v4", "HB120rs v3", "NP10s"):
                est = results[(cycles, name, iname)]
                row += [round(est.hours, 2), est.dollars]
            rows.append(row)
        print_table(
            f"Table 6 ({label} cycles): hours and dollars per instance",
            ["bench", "D2 h", "D2 $", "D16 h", "D16 $", "HB h", "HB $",
             "NP10s h", "NP10s $"], rows)

    # Paper's spot checks.
    vta10 = results[(1e10, "vta", "NP10s")]
    assert round(vta10.hours, 2) == 9.99 and vta10.dollars == 21.45
    d2 = results[(1e10, "vta", "D2 v4")]
    assert d2.hours > 80  # "serial simulation can take most of a week"

    # Headline shape: for 10B cycles Manticore finishes every benchmark
    # within a long workday (13 h), while serial can exceed a day.
    np_hours = [results[(1e10, n, "NP10s")].hours for n in BENCH_ORDER]
    assert max(np_hours) < 13.0
    serial_hours = [results[(1e10, n, "D2 v4")].hours for n in BENCH_ORDER]
    assert sum(workday_flags(h) for h in serial_hours) >= 5

    # Manticore is sometimes *cheaper* than D16 despite the pricier
    # instance (paper: "Manticore, in some cases, offers a lower cost").
    cheaper = [
        n for n in BENCH_ORDER
        if results[(1e10, n, "NP10s")].dollars
        < results[(1e10, n, "D16 v4")].dollars
    ]
    assert cheaper  # at least one benchmark
