"""Workload scale-trajectory benchmark: 8x8 -> 15x15 -> 32x32.

Runs the nine design families at each (grid, scale) operating point of
:data:`repro.workloads.bench.TRAJECTORY` - small sizes on today's 8x8
CI grid, paper sizes on the paper's 15x15 (225-core) machine, stretch
sizes on a 32x32 grid - plus a registry pin sweep (every named
workload, including the external Verilog designs and the promoted fuzz
corpus, re-checked against its pinned fingerprint and state digest).
Every row requires bit-identical engine-independent state digests
across its engine set, so this bench doubles as the cross-engine
equivalence gate at scales the unit suite never visits.

Writes ``BENCH_workloads.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_workloads.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.workloads.bench import (TRAJECTORY, bench_row,  # noqa: E402
                                   verify_registry)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_workloads.json"


def main() -> int:
    def progress(msg: str) -> None:
        print(f"-- {msg}", flush=True)

    rows = []
    for point in TRAJECTORY:
        row = bench_row(point["grid"], point["scale"], point["engines"],
                        progress=progress)
        rows.append(row)

    registry = verify_registry(progress=progress)

    payload = {
        "trajectory": rows,
        "registry": registry,
        "gate": {
            "digests_agree_all_rows": all(r["digests_agree"]
                                          for r in rows),
            "registry_all_ok": registry["all_ok"],
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
