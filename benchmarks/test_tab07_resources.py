"""Table 7 + SSA.7: per-core FPGA resource utilization and the URAM
bound on the number of cores."""

from harness import print_table
from repro.fpga import (
    CORE,
    U200,
    core_utilization_percent,
    grid_resources,
    max_cores,
)


def test_tab07_core_resources(benchmark):
    util = benchmark(core_utilization_percent)
    fields = ["lut", "lutram", "ff", "bram", "uram", "dsp", "srl"]
    print_table("Table 7: single-core resource utilization on U200",
                ["resource", "count", "% of U200"],
                [[f.upper(), getattr(CORE, f), round(util[f], 3)]
                 for f in fields])

    # Published counts.
    assert CORE.lut == 545 and CORE.bram == 4 and CORE.uram == 2
    assert CORE.dsp == 1
    # URAM is the dominant per-core percentage (the binding resource).
    assert util["uram"] == max(util[f] for f in fields)


def test_appendix_core_count_bound(benchmark):
    bound = benchmark(max_cores)
    print(f"\nURAM-limited core bound: {bound} "
          f"(800 available URAMs - 4 for the cache, 2 per core)")
    assert bound == 398  # paper SS7.2
    # The evaluated 225-core grid fits comfortably.
    assert grid_resources(225).fits_in(U200)
    # One more core than the bound exceeds the available URAM budget.
    assert grid_resources(bound + 1).uram > 800 - 4
