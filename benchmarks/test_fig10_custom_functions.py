"""Fig. 10: savings from custom instructions (paper SS7.8.2).

Compiles every benchmark with and without MFFC custom-function synthesis
and reports: the reduction in non-NOp instructions over all cores (the
numbers above the paper's bars: 2.9-17.8%), and the end-to-end VCPL
ratio (paper: < 10% improvement, sometimes none - fusing reduces total
work but not necessarily the straggler's path).
"""

from harness import BENCH_ORDER, compile_design, print_table


def _both():
    out = {}
    for name in BENCH_ORDER:
        for enabled in (True, False):
            res = compile_design(name, enable_custom_functions=enabled)
            image_instrs = sum(
                len(p.body) for p in res.image.processes.values())
            out[(name, enabled)] = {
                "vcpl": res.report.vcpl,
                "instrs": image_instrs,
                "custom": res.report.custom,
                "breakdown": res.report.breakdown,
            }
    return out


def test_fig10_custom_instructions(benchmark):
    stats = benchmark(_both)

    rows = []
    for name in BENCH_ORDER:
        with_cf = stats[(name, True)]
        without = stats[(name, False)]
        reduction = 100.0 * (without["instrs"] - with_cf["instrs"]) \
            / max(1, without["instrs"])
        ratio = with_cf["vcpl"] / without["vcpl"]
        synth = with_cf["custom"]
        rows.append([
            name,
            without["instrs"], with_cf["instrs"], round(reduction, 1),
            without["vcpl"], with_cf["vcpl"], round(ratio, 2),
            with_cf["breakdown"].get("custom", 0),
            round(synth.reduction_percent, 1) if synth else "-",
        ])
    print_table(
        "Fig 10: custom-instruction savings",
        ["bench", "instrs w/o", "instrs w/", "reduction %",
         "vcpl w/o", "vcpl w/", "ratio", "straggler cust",
         "synth red %"], rows)

    # ---- shape assertions -------------------------------------------
    # Fusing never increases total instruction count, and achieves a
    # paper-magnitude reduction (2.9-17.8%) on at least half the suite.
    reductions = {}
    for name in BENCH_ORDER:
        w = stats[(name, True)]["instrs"]
        wo = stats[(name, False)]["instrs"]
        assert w <= wo, name
        reductions[name] = (wo - w) / max(1, wo)
    assert sum(1 for r in reductions.values() if r >= 0.02) >= 4

    # End-to-end VCPL effect is small (paper: "the VCPL (end-to-end)
    # reduction is less than 10% for all benchmarks") - custom functions
    # cut work, not necessarily the critical path.  Allow the same
    # modest win/no-change band, in either direction for heuristics.
    for name in BENCH_ORDER:
        ratio = stats[(name, True)]["vcpl"] / stats[(name, False)]["vcpl"]
        assert 0.75 <= ratio <= 1.15, (name, ratio)

    # The logic-heavy miner (bc: SHA-256 ch/maj chains) benefits most in
    # relative instruction reduction among the nine.
    assert reductions["bc"] == max(reductions.values())
