"""Table 3: Manticore vs Verilator simulation performance.

For each of the nine benchmarks we report:

* ``# instr`` - estimated x86 instructions per RTL cycle,
* Verilator serial (S) and best multithreaded (MT) rates on the three
  platforms, from the calibrated cost models,
* Manticore's rate - 475 MHz / VCPL, taking the best core count from the
  Fig. 7 sweep (the paper's merge keeps consolidating past the core
  budget when it reduces execution time; our sweep makes that explicit),
* speedups xS / xMT.

Scale note (see EXPERIMENTS.md): our designs are 10-100x smaller than
the paper's, and Manticore's fixed overheads (pipeline latency chains,
NoC latency) do not amortize on tiny designs.  The *shape* reproduced
here is the paper's own size law: speedup grows with design size, the
larger half of the suite wins, and jpeg - the serial decoder - loses
by an order of magnitude.
"""

from harness import (
    BENCH_ORDER,
    PAPER_TABLE3,
    PROTOTYPE_MHZ,
    best_manticore,
    circuit_of,
    geomean,
    print_table,
    verilator_rates,
)
from repro.baseline import instruction_estimate

PLATFORM_KEYS = ("i7", "xeon", "epyc")


def _full_table():
    table = {}
    for name in BENCH_ORDER:
        est = instruction_estimate(circuit_of(name))
        manticore = best_manticore(name)
        row = {"est": est, "manticore": manticore}
        for key in PLATFORM_KEYS:
            row[key] = verilator_rates(name, key)
        table[name] = row
    return table


def test_tab03_performance(benchmark):
    table = benchmark(_full_table)

    rows = []
    for name in BENCH_ORDER:
        r = table[name]
        man = r["manticore"]
        rows.append([
            name, r["est"],
            round(r["i7"]["S"], 1), round(r["i7"]["MT"], 1),
            round(r["epyc"]["S"], 1), round(r["epyc"]["MT"], 1),
            round(man["rate"], 1), man["cores"],
            round(man["rate"] / r["i7"]["S"], 2),
            round(man["rate"] / r["i7"]["MT"], 2),
        ])
    print_table(
        "Table 3: simulation rates (kHz) - models for Verilator, "
        "compiled VCPL for Manticore",
        ["bench", "#instr", "i7 S", "i7 MT", "epyc S", "epyc MT",
         "manticore", "cores", "xS(i7)", "xMT(i7)"],
        rows)

    # Paper reference for the same table (kHz).
    print_table(
        "Table 3 (paper, for comparison)",
        ["bench", "i7 S", "i7 MT", "epyc S", "epyc MT", "manticore"],
        [[n, *PAPER_TABLE3[n][:2], *PAPER_TABLE3[n][4:6],
          PAPER_TABLE3[n][6]] for n in BENCH_ORDER])

    # ---- shape assertions -------------------------------------------
    xs = {n: table[n]["manticore"]["rate"] / table[n]["i7"]["S"]
          for n in BENCH_ORDER}
    xmt = {n: table[n]["manticore"]["rate"] / table[n]["i7"]["MT"]
           for n in BENCH_ORDER}

    # The serial decoder (jpeg) and the tiny stencil (blur) are
    # Manticore's worst cases by an order of magnitude (paper: jpeg at
    # 0.05x; our blur is jpeg-sized, see EXPERIMENTS.md).
    worst_two = sorted(xs, key=xs.get)[:2]
    assert set(worst_two) == {"jpeg", "blur"}
    assert xs["jpeg"] < 0.25 and xs["blur"] < 0.25

    # Speedup grows with design size: the three largest designs beat the
    # three smallest on average by a wide margin.
    big = geomean([xs[n] for n in ("vta", "mc", "noc")])
    small = geomean([xs[n] for n in ("bc", "blur", "jpeg")])
    assert big > 2 * small

    # The larger half of the suite reaches Verilator-competitive or
    # better rates, and some benchmarks win outright against serial
    # Verilator even at our reduced design scale.
    assert sum(1 for n in ("vta", "mc", "noc", "mm", "rv32r", "cgra")
               if xs[n] >= 0.8) >= 3
    assert sum(1 for v in xs.values() if v > 1.0) >= 2

    # The paper's headline ("outperforms ... in 8 out of 9 benchmarks")
    # holds against multithreaded Verilator: at least 8 of 9 beat the
    # desktop's best multithreaded rate.
    assert sum(1 for v in xmt.values() if v > 1.0) >= 8

    # Multithreaded Verilator's self-speedup collapses on small designs
    # (paper Table 3 xself < 1 for bc/blur/jpeg on the desktop).
    for name in ("bc", "blur", "jpeg"):
        r = table[name]
        assert r["i7"]["MT"] < 1.5 * r["i7"]["S"]
