"""Consolidated benchmark dashboard: one JSON with every headline.

Each ``benchmarks/bench_*.py`` script writes its own ``BENCH_*.json``
artifact with full per-design detail.  This aggregator distills those
into ``BENCH_suite.json`` - the headline numbers a reader (or a CI
regression check) wants at a glance - without re-running anything.
Sections whose artifact is missing are skipped with a note, so the
suite file is always writable from whatever subset has been measured.

Run with::

    PYTHONPATH=src python benchmarks/bench_suite.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_suite.json"


def _load(name: str) -> dict | None:
    path = ROOT / f"BENCH_{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _geomean(values: list[float]) -> float:
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values)) if values else 0.0


def _engine_headline(d: dict) -> dict:
    designs = d["designs"]
    return {
        "grid": d["grid"],
        "designs": len(designs),
        "geomean_codegen_vcycles_per_sec": round(_geomean(
            [v["codegen_vcycles_per_sec"] for v in designs.values()]), 1),
        "codegen_speedup_vs_fast": [d["min_codegen_speedup_vs_fast"],
                                    d["max_codegen_speedup_vs_fast"]],
        "fast_speedup_vs_strict": [d["min_speedup"], d["max_speedup"]],
    }


def _compile_headline(d: dict) -> dict:
    designs = d["designs"]
    return {
        "grid": d["grid"],
        "designs": len(designs),
        "geomean_warm_cache_speedup": round(_geomean(
            [v["warm_speedup"] for v in designs.values()]), 1),
        "all_bit_identical": all(v["bit_identical"]
                                 for v in designs.values()),
    }


def _fuzz_headline(d: dict) -> dict:
    out = {
        "seeds_per_matrix": d["seeds_per_matrix"],
        "matrix_seeds_per_s": {
            name: r["seeds_per_s"] for name, r in d["matrices"].items()},
        "shrink_final_ops": d["shrink"]["final_ops"],
    }
    for lowering, b in d.get("batched", {}).items():
        out[f"batch_{lowering}_lane_seeds_per_s"] = b["lane_seeds_per_s"]
        if "speedup_vs_engines_x" in b:
            out[f"batch_{lowering}_speedup_vs_engines_x"] = \
                b["speedup_vs_engines_x"]
    return out


def _checkpoint_headline(d: dict) -> dict:
    gate = d["gate"]
    return {
        "grid": d["grid"],
        "designs": len(d["designs"]),
        "limit_percent": gate["limit_percent"],
        "suite_overhead_percent": gate["suite_overhead_percent"],
        "max_design_overhead_percent":
            gate["max_design_overhead_percent"],
        "geomean_design_overhead_percent":
            gate["geomean_design_overhead_percent"],
        "gate": "pass" if gate["passed"] else "FAIL",
    }


def _workloads_headline(d: dict) -> dict:
    trajectory = []
    for row in d["trajectory"]:
        designs = row["designs"]
        fastest = {
            name: max(e["vcycles_per_s"]
                      for e in entry["engines"].values())
            for name, entry in designs.items()}
        trajectory.append({
            "grid": row["grid"],
            "scale": row["scale"],
            "designs": len(designs),
            "engines": list(row["engines"]),
            "total_ops": sum(v["ops"] for v in designs.values()),
            "geomean_compile_s": round(_geomean(
                [v["compile_s"] for v in designs.values()]), 2),
            "geomean_best_vcycles_per_s": round(_geomean(
                list(fastest.values())), 1),
            "digests_agree": row["digests_agree"],
        })
    return {
        "trajectory": trajectory,
        "registry_entries": len(d["registry"]["entries"]),
        "registry_all_ok": d["registry"]["all_ok"],
        "gate": ("pass" if (d["gate"]["digests_agree_all_rows"]
                            and d["gate"]["registry_all_ok"])
                 else "FAIL"),
    }


def _obs_headline(d: dict) -> dict:
    return {
        "grid": d["grid"],
        "designs": len(d["designs"]),
        "max_zero_observer_overhead_percent":
            d["max_zero_observer_overhead"] * 100,
        "geomean_zero_observer_overhead_percent":
            d["geomean"]["zero_observer_overhead_percent"],
        "geomean_profiler_overhead_percent":
            d["geomean"]["profiler_overhead_percent"],
    }


def _serve_headline(d: dict) -> dict:
    return {
        "jobs": d["jobs"],
        "workers": d["workers"],
        "zipf_s": d["zipf_s"],
        "jobs_per_s": d["jobs_per_s"],
        "p50_s": d["p50_s"],
        "p99_s": d["p99_s"],
        "cache_hit_rate": d["cache_hit_rate"],
        "preempt_roundtrip_s": d.get("preempt_roundtrip_s"),
    }


_SECTIONS = {
    "engine": _engine_headline,
    "compile": _compile_headline,
    "fuzz": _fuzz_headline,
    "checkpoint": _checkpoint_headline,
    "obs": _obs_headline,
    "serve": _serve_headline,
    "workloads": _workloads_headline,
}


def main() -> int:
    suite: dict[str, object] = {}
    missing = []
    for name, distill in _SECTIONS.items():
        raw = _load(name)
        if raw is None:
            missing.append(name)
            continue
        suite[name] = distill(raw)
    if missing:
        suite["missing"] = missing
        print(f"note: no artifact for {', '.join(missing)} "
              f"(run benchmarks/bench_<name>.py)", file=sys.stderr)
    OUT_PATH.write_text(json.dumps(suite, indent=2, sort_keys=True)
                        + "\n")
    print(json.dumps(suite, indent=2, sort_keys=True))
    print(f"wrote {OUT_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
