"""Execution-engine benchmark: strict vs permissive vs fast vs codegen.

Times the cycle-accurate machine model under every registered engine on
the full nine-design registry on an 8x8 grid and writes
``BENCH_engine.json`` with Vcycles/second per engine plus the two
speedups that gate the engine roadmap (fast over strict, codegen over
fast).  Not a pytest file on purpose: wall-clock numbers belong in a
standalone run, not in the correctness suite.

Methodology - sustained post-warmup throughput, uniform for all
engines: each (design, engine) measurement uses a *fresh* machine,
steps two warmup Vcycles first, then times ``run`` to ``$finish`` or
the design budget.  For the compiled engines the warmup absorbs the
strict verification Vcycle, the trust hand-off, and (for codegen)
source emission / exec-module compilation, so the timed region is the
steady state a long simulation actually spends its life in.  A full-run
measurement would instead be dominated by the one-time verification
Vcycle on short designs (a single strict Vcycle costs more wall-clock
than the entire 10x codegen budget on several of them), which measures
startup, not simulation.  Best of ``REPEATS`` runs is reported.  All
engines execute the exact same Vcycle count - they are bit-identical,
which ``tests/test_engine_equivalence.py`` and
``tests/test_codegen_equivalence.py`` enforce separately.

Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import BENCH_ORDER, machine_for, precompile  # noqa: E402

from repro.designs import DESIGNS  # noqa: E402
from repro.machine import ENGINES  # noqa: E402

BENCH_DESIGNS = tuple(BENCH_ORDER)   # the full nine-design registry
GRID_SIDE = 8
WARMUP_VCYCLES = 2
REPEATS = int(os.environ.get("BENCH_ENGINE_REPEATS", "5"))
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _measure(name: str, engine: str) -> tuple[float, int]:
    """Best Vcycles/second over REPEATS fresh runs, and the Vcycle count."""
    budget = DESIGNS[name].cycles + 300
    best = 0.0
    vcycles = 0
    for _ in range(REPEATS):
        machine = machine_for(name, engine=engine, grid_side=GRID_SIDE)
        for _w in range(WARMUP_VCYCLES):
            machine.step_vcycle()
        start = time.perf_counter()
        machine.run(budget)
        elapsed = time.perf_counter() - start
        timed = machine.counters.vcycles - WARMUP_VCYCLES
        vcycles = machine.counters.vcycles
        if elapsed > 0:
            best = max(best, timed / elapsed)
    return best, vcycles


def main() -> int:
    # One concurrent compile_many fan-out instead of nine serial compiles.
    precompile(BENCH_DESIGNS, grid_side=GRID_SIDE)
    results: dict[str, dict] = {}
    for name in BENCH_DESIGNS:
        rates: dict[str, float] = {}
        vcycles = None
        for engine in ENGINES:
            vps, ran = _measure(name, engine)
            rates[engine] = vps
            if vcycles is None:
                vcycles = ran
            else:
                assert ran == vcycles, (
                    f"{name}: engines ran different Vcycle counts "
                    f"({vcycles} vs {ran} under {engine})")
        speedup = rates["fast"] / rates["strict"] if rates["strict"] else 0.0
        codegen_vs_fast = (rates["codegen"] / rates["fast"]
                           if rates["fast"] else 0.0)
        results[name] = {
            "vcycles": vcycles,
            "strict_vcycles_per_sec": round(rates["strict"], 2),
            "permissive_vcycles_per_sec": round(rates["permissive"], 2),
            "fast_vcycles_per_sec": round(rates["fast"], 2),
            "codegen_vcycles_per_sec": round(rates["codegen"], 2),
            "speedup": round(speedup, 2),
            "codegen_speedup_vs_fast": round(codegen_vs_fast, 2),
        }
        print(f"{name:>6}: strict {rates['strict']:9.1f} Vc/s   "
              f"fast {rates['fast']:9.1f} Vc/s ({speedup:5.2f}x)   "
              f"codegen {rates['codegen']:10.1f} Vc/s "
              f"({codegen_vs_fast:5.2f}x vs fast)")

    speedups = [r["speedup"] for r in results.values()]
    codegen_speedups = [r["codegen_speedup_vs_fast"] for r in results.values()]
    payload = {
        "grid": f"{GRID_SIDE}x{GRID_SIDE}",
        "warmup_vcycles": WARMUP_VCYCLES,
        "repeats": REPEATS,
        "designs": results,
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "min_codegen_speedup_vs_fast": min(codegen_speedups),
        "max_codegen_speedup_vs_fast": max(codegen_speedups),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    failed = False
    at_least_3x = sum(1 for s in speedups if s >= 3.0)
    needed = (2 * len(speedups) + 2) // 3   # two-thirds of the suite
    if at_least_3x < needed:
        print(f"FAIL: only {at_least_3x}/{len(speedups)} designs reached "
              f"3x fast-over-strict (need {needed})", file=sys.stderr)
        failed = True
    at_least_10x = sum(1 for s in codegen_speedups if s >= 10.0)
    if at_least_10x < 5:
        print(f"FAIL: only {at_least_10x}/{len(codegen_speedups)} designs "
              f"reached 10x codegen-over-fast (need 5)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
