"""Strict vs fast execution-engine benchmark.

Times the cycle-accurate machine model under both engines on the full
nine-design registry on an 8x8 grid and writes ``BENCH_engine.json``
with Vcycles/second per engine and the speedup.  Not a pytest file on
purpose: wall-clock numbers belong in a standalone run, not in the
correctness suite.

Methodology: each (design, engine) measurement uses a *fresh* machine,
steps two warmup Vcycles first (for the fast engine that is the strict
verification Vcycle plus the first trusted one, so compile cost and
trust hand-off are excluded), then times the run to ``$finish`` or the
design budget.  Best of ``REPEATS`` runs is reported.  Both engines
execute the exact same Vcycle count - they are bit-identical, which
``tests/test_engine_equivalence.py`` enforces separately.

Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import BENCH_ORDER, machine_for, precompile  # noqa: E402

from repro.designs import DESIGNS  # noqa: E402

BENCH_DESIGNS = tuple(BENCH_ORDER)   # the full nine-design registry
GRID_SIDE = 8
WARMUP_VCYCLES = 2
REPEATS = int(os.environ.get("BENCH_ENGINE_REPEATS", "3"))
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _measure(name: str, engine: str) -> tuple[float, int]:
    """Best Vcycles/second over REPEATS fresh runs, and the Vcycle count."""
    budget = DESIGNS[name].cycles + 300
    best = 0.0
    vcycles = 0
    for _ in range(REPEATS):
        machine = machine_for(name, engine=engine, grid_side=GRID_SIDE)
        for _w in range(WARMUP_VCYCLES):
            machine.step_vcycle()
        start = time.perf_counter()
        machine.run(budget)
        elapsed = time.perf_counter() - start
        timed = machine.counters.vcycles - WARMUP_VCYCLES
        vcycles = machine.counters.vcycles
        if elapsed > 0:
            best = max(best, timed / elapsed)
    return best, vcycles


def main() -> int:
    # One concurrent compile_many fan-out instead of nine serial compiles.
    precompile(BENCH_DESIGNS, grid_side=GRID_SIDE)
    results: dict[str, dict] = {}
    for name in BENCH_DESIGNS:
        strict_vps, vcycles = _measure(name, "strict")
        fast_vps, fast_vcycles = _measure(name, "fast")
        assert vcycles == fast_vcycles, (
            f"{name}: engines ran different Vcycle counts "
            f"({vcycles} vs {fast_vcycles})")
        speedup = fast_vps / strict_vps if strict_vps else 0.0
        results[name] = {
            "vcycles": vcycles,
            "strict_vcycles_per_sec": round(strict_vps, 2),
            "fast_vcycles_per_sec": round(fast_vps, 2),
            "speedup": round(speedup, 2),
        }
        print(f"{name:>6}: strict {strict_vps:9.1f} Vc/s   "
              f"fast {fast_vps:9.1f} Vc/s   {speedup:5.2f}x")

    speedups = [r["speedup"] for r in results.values()]
    payload = {
        "grid": f"{GRID_SIDE}x{GRID_SIDE}",
        "warmup_vcycles": WARMUP_VCYCLES,
        "repeats": REPEATS,
        "designs": results,
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    at_least_3x = sum(1 for s in speedups if s >= 3.0)
    needed = (2 * len(speedups) + 2) // 3   # two-thirds of the suite
    if at_least_3x < needed:
        print(f"FAIL: only {at_least_3x}/{len(speedups)} designs reached "
              f"3x (need {needed})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
