"""Table 1: clock frequency achieved on the U200 per grid size, with
automatic vs guided floorplanning (paper SS7.2 / SSA.5)."""

from harness import print_table
from repro.fpga import frequency_mhz, needs_guided_floorplan, table1_rows


def test_tab01_frequency_model(benchmark):
    rows = benchmark(table1_rows)
    print_table("Table 1: U200 clock frequency (MHz)",
                ["grid", "cores", "auto", "guided"],
                [[r["grid"], r["cores"], r["auto_mhz"], r["guided_mhz"]]
                 for r in rows])

    by_grid = {r["grid"]: r for r in rows}
    # Published measurements encoded exactly.
    assert by_grid["8x8"]["auto_mhz"] == 500.0
    assert by_grid["15x15"]["guided_mhz"] == 475.0
    assert by_grid["16x16"]["auto_mhz"] == 180.0

    # Shape: auto degrades abruptly past the single-SLR region; guided
    # floorplanning recovers most of the frequency.
    assert by_grid["16x16"]["auto_mhz"] < 0.5 * by_grid["12x12"]["auto_mhz"]
    assert by_grid["16x16"]["guided_mhz"] >= 2 * by_grid["16x16"]["auto_mhz"]

    # Interpolation behaves for unpublished sizes.
    t = frequency_mhz(13, 13)
    assert by_grid["15x15"]["auto_mhz"] <= t.auto_mhz <= \
        by_grid["12x12"]["auto_mhz"]
    assert needs_guided_floorplan(15, 15)
    assert not needs_guided_floorplan(8, 8)
