import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
