"""Compile-time benchmark: cold vs warm cache, serial vs parallel.

The compile-side companion of ``bench_engine.py`` (the paper reports
compile time as a first-class metric, Table 8 / Fig. 14).  For every
design in the registry this measures, on the prototype grid:

* ``serial_s``   - plain ``compile_circuit`` with ``jobs=1``, no cache;
* ``parallel_s`` - same with ``jobs=N`` (bit-identity asserted);
* ``cold_s``     - compile through an empty content-addressed cache
  (includes key derivation and the artifact store);
* ``warm_s``     - the same compile again: a cache hit (key derivation +
  unpickle, no pipeline phase runs; bit-identity asserted).

On top of the per-design sweep, a batch section compiles the whole
design set through ``compile_many`` on the persistent worker pool
(``repro.pool``): ``batch_serial_s`` with ``jobs=1`` against
``batch_parallel_s`` with ``jobs=N``, bit-identity asserted pairwise.

Best of ``REPEATS`` runs is reported; each cold repeat uses a fresh
cache directory.  Two gates enforce PR acceptance criteria: overall
warm-cache speedup (total cold / total warm) >= 10x, and pooled batch
compile >= 1.5x serial (only on machines with >= 2 CPUs - the pool
cannot beat serial on one core, so single-CPU runs record the numbers
and skip the gate).

Run with::

    PYTHONPATH=src python benchmarks/bench_compile.py

Environment knobs: ``BENCH_COMPILE_REPEATS`` (default 3; CI smoke uses
1), ``BENCH_COMPILE_JOBS`` (default min(4, CPUs)),
``BENCH_COMPILE_DESIGNS`` (comma-separated subset).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import BENCH_ORDER, circuit_of, _prototype_options  # noqa: E402

from repro.machine.boot import serialize  # noqa: E402
from repro.compiler import compile_circuit, compile_many  # noqa: E402

REPEATS = int(os.environ.get("BENCH_COMPILE_REPEATS", "3"))
JOBS = int(os.environ.get("BENCH_COMPILE_JOBS",
                          str(min(4, os.cpu_count() or 1))))
DESIGN_SET = [n for n in
              os.environ.get("BENCH_COMPILE_DESIGNS", ",".join(BENCH_ORDER))
              .split(",") if n]
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_compile.json"
WARM_GATE = 10.0
POOL_GATE = 1.5
POOL_GATE_MIN_CPUS = 2


def pool_gate_status(cpus: int | None = None) -> tuple[bool, str]:
    """Whether the >=1.5x pooled-batch gate is armed, and its label.

    The gate only arms with >= ``POOL_GATE_MIN_CPUS`` CPUs: the
    persistent worker pool needs a second core to overlap compiles, so
    on a single-CPU box the numbers are recorded but the gate is
    skipped.  ``cpus=None`` reads ``os.cpu_count()`` (tests pass an
    explicit count).
    """
    if cpus is None:
        cpus = os.cpu_count() or 1
    if cpus >= POOL_GATE_MIN_CPUS:
        return True, f">={POOL_GATE}x"
    return False, (f"skipped ({cpus} cpu: persistent-pool batch compile "
                   f"needs >= {POOL_GATE_MIN_CPUS} cores to beat serial)")


def _best(fn, repeats: int = REPEATS) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure(name: str, scratch: Path) -> dict:
    base = _prototype_options()

    serial_s, serial = _best(
        lambda: compile_circuit(circuit_of(name), base))
    parallel_s, parallel = _best(
        lambda: compile_circuit(circuit_of(name), replace(base, jobs=JOBS)))
    ref = serialize(serial.program)
    assert serialize(parallel.program) == ref, (
        f"{name}: jobs={JOBS} binary differs from jobs=1")

    # Cold: every repeat sees an empty cache directory.
    cold_s = float("inf")
    cold = None
    for i in range(REPEATS):
        cache_dir = scratch / f"{name}-cold{i}"
        opts = replace(base, cache_dir=str(cache_dir))
        start = time.perf_counter()
        cold = compile_circuit(circuit_of(name), opts)
        cold_s = min(cold_s, time.perf_counter() - start)
        assert cold.report.cache["status"] == "miss"

    # Warm: hits against the last cold directory.
    warm_opts = replace(base, cache_dir=str(scratch /
                                            f"{name}-cold{REPEATS - 1}"))
    warm_s, warm = _best(
        lambda: compile_circuit(circuit_of(name), warm_opts))
    assert warm.report.cache["status"] == "hit"
    assert serialize(warm.program) == ref, (
        f"{name}: warm-cache binary differs from cold compile")

    return {
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2),
        "bit_identical": True,
    }


def _measure_batch() -> dict:
    """Whole-design-set ``compile_many``: serial loop vs the persistent
    worker pool.  Same-machine, same-set — this is the number the pool
    exists for (PR-2's per-phase fan-out lost to serial)."""
    base = _prototype_options()
    # At least two workers so the pooled path actually runs - on a
    # single-CPU machine the number is recorded but the gate skipped.
    batch_jobs = max(2, JOBS)

    serial_s, serial = _best(lambda: compile_many(
        [circuit_of(n) for n in DESIGN_SET], replace(base, jobs=1)))
    parallel_s, parallel = _best(lambda: compile_many(
        [circuit_of(n) for n in DESIGN_SET],
        replace(base, jobs=batch_jobs)))
    for name, s, p in zip(DESIGN_SET, serial, parallel):
        assert serialize(p.program) == serialize(s.program), (
            f"{name}: pooled batch binary differs from serial batch")

    speedup = serial_s / parallel_s if parallel_s else 0.0
    _, gate_label = pool_gate_status()
    return {
        "designs": len(DESIGN_SET),
        "jobs": batch_jobs,
        "batch_serial_s": round(serial_s, 4),
        "batch_parallel_s": round(parallel_s, 4),
        "batch_speedup": round(speedup, 2),
        "bit_identical": True,
        "pool_gate": gate_label,
    }


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="bench-compile-"))
    results: dict[str, dict] = {}
    try:
        for name in DESIGN_SET:
            results[name] = _measure(name, scratch)
            r = results[name]
            print(f"{name:>6}: serial {r['serial_s']:7.3f}s   "
                  f"jobs={JOBS} {r['parallel_s']:7.3f}s "
                  f"({r['parallel_speedup']:4.2f}x)   "
                  f"cold {r['cold_s']:7.3f}s   warm {r['warm_s']:7.4f}s "
                  f"({r['warm_speedup']:6.1f}x)")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    batch = _measure_batch()
    print(f" batch: serial {batch['batch_serial_s']:7.3f}s   "
          f"pool jobs={batch['jobs']} {batch['batch_parallel_s']:7.3f}s "
          f"({batch['batch_speedup']:4.2f}x, gate {batch['pool_gate']})")

    total_cold = sum(r["cold_s"] for r in results.values())
    total_warm = sum(r["warm_s"] for r in results.values())
    overall = total_cold / total_warm if total_warm else 0.0
    payload = {
        "grid": "15x15",
        "repeats": REPEATS,
        "jobs": JOBS,
        "cpus": os.cpu_count(),
        "designs": results,
        "batch": batch,
        "total_cold_s": round(total_cold, 3),
        "total_warm_s": round(total_warm, 4),
        "overall_warm_speedup": round(overall, 1),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}  (overall warm speedup {overall:.1f}x)")

    status = 0
    if overall < WARM_GATE:
        print(f"FAIL: overall warm-cache speedup {overall:.1f}x < "
              f"{WARM_GATE}x", file=sys.stderr)
        status = 1
    if (pool_gate_status()[0]
            and batch["batch_speedup"] < POOL_GATE):
        print(f"FAIL: pooled batch compile {batch['batch_speedup']}x < "
              f"{POOL_GATE}x serial on {os.cpu_count()} CPUs",
              file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
