"""Fig. 7: Manticore's multicore scaling.

As in the paper, "the speedup numbers are predicted by Manticore's
compiler instead of actual execution, since the compiler can accurately
count cycles": we recompile each benchmark under growing core budgets and
report VCPL-derived speedups relative to the smallest configuration that
fits.

Paper shapes asserted: performance improves with cores and then plateaus
(Amdahl); jpeg plateaus immediately (its serial Huffman chain), mc -
embarrassingly parallel - keeps improving the longest.
"""

from harness import BENCH_ORDER, CORE_SWEEP, print_table, vcpl_sweep


def _sweep_all():
    return {name: vcpl_sweep(name) for name in BENCH_ORDER}


def test_fig07_scaling(benchmark):
    sweeps = benchmark(_sweep_all)

    rows = []
    for name in BENCH_ORDER:
        sweep = sweeps[name]
        budgets = sorted(sweep)
        base = sweep[budgets[0]]["vcpl"]
        row = [name]
        for cores in CORE_SWEEP:
            if cores in sweep:
                row.append(round(base / sweep[cores]["vcpl"], 2))
            else:
                row.append("-")
        rows.append(row)
    print_table("Fig 7: speedup vs smallest fitting configuration",
                ["bench"] + [str(c) for c in CORE_SWEEP], rows)

    from repro.textplot import line_plot
    series = {}
    for name in ("mc", "mm", "bc", "jpeg"):
        sweep = sweeps[name]
        budgets = sorted(sweep)
        base = sweep[budgets[0]]["vcpl"]
        series[name] = [(c, base / sweep[c]["vcpl"]) for c in budgets]
    print(line_plot(series, title="Fig 7: speedup vs core budget"))

    for name in BENCH_ORDER:
        sweep = sweeps[name]
        budgets = sorted(sweep)
        vcpls = [sweep[c]["vcpl"] for c in budgets]
        # More cores never makes things catastrophically worse...
        assert vcpls[-1] <= 1.3 * min(vcpls)
        # ...and the best configuration clearly beats the single-core one
        # for every benchmark with exploitable parallelism (jpeg's serial
        # Huffman chain and the tiny blur stencil have none at our scale
        # - the paper's "insufficient parallelism ... may happen early").
        if name not in ("jpeg", "blur"):
            assert min(vcpls) < 0.85 * vcpls[0], name

    # jpeg: scaling plateaus immediately (paper: "this may happen early
    # (jpeg)"): best improvement under 1.5x.
    jp = sweeps["jpeg"]
    jb = sorted(jp)
    assert jp[jb[0]]["vcpl"] / min(jp[c]["vcpl"] for c in jb) < 1.5

    # mc: embarrassingly parallel - large gains from the sweep
    # (paper: "or late (mc)").
    mc = sweeps["mc"]
    mb = sorted(mc)
    assert mc[mb[0]]["vcpl"] / min(mc[c]["vcpl"] for c in mb) > 4.0

    # Parallelism saturates: the widest budget is never required to be
    # the best by a large margin (plateau), i.e. 225-core VCPL is within
    # 30% of the best for every benchmark.
    for name in BENCH_ORDER:
        sweep = sweeps[name]
        widest = sweep[max(sweep)]["vcpl"]
        best = min(v["vcpl"] for v in sweep.values())
        assert widest <= 1.3 * best
