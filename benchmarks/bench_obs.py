"""Observer-overhead benchmark for the observability subsystem.

Measures the fast engine on the full nine-design registry in three
configurations and writes ``BENCH_obs.json``:

* **off** - no profiler attached (the zero-observer path: the machine
  pays only ``is None`` checks);
* **on** - a :class:`repro.obs.Profiler` attached (per-Vcycle bulk
  merges of the statically-known counts);
* **baseline** - the fast-engine rate recorded in ``BENCH_engine.json``
  before the observability hooks existed, for a cross-PR regression
  check.

The gate: the zero-observer geomean rate must stay within
``MAX_ZERO_OBSERVER_OVERHEAD`` (2%) of the recorded baseline, and
profiler-on overhead is reported (informational - profiling is opt-in).
Baseline comparison is skipped per-design when ``BENCH_engine.json`` is
missing; wall-clock noise is handled by best-of-``REPEATS`` with
interleaved off/on measurement.

Run with::

    PYTHONPATH=src python benchmarks/bench_obs.py
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import BENCH_ORDER, machine_for, precompile  # noqa: E402

from repro.designs import DESIGNS  # noqa: E402
from repro.obs import Profiler  # noqa: E402

BENCH_DESIGNS = tuple(BENCH_ORDER)
GRID_SIDE = 8
WARMUP_VCYCLES = 2
REPEATS = int(os.environ.get("BENCH_OBS_REPEATS", "5"))
#: Allowed slowdown of the unobserved fast path vs the pre-obs baseline.
MAX_ZERO_OBSERVER_OVERHEAD = 0.02
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
ENGINE_BASELINE = Path(__file__).resolve().parent.parent \
    / "BENCH_engine.json"


def _time_run(name: str, profiler) -> float:
    """Vcycles/second of one fresh fast-engine run (post-warmup)."""
    budget = DESIGNS[name].cycles + 300
    machine = machine_for(name, engine="fast", grid_side=GRID_SIDE,
                          profiler=profiler)
    for _ in range(WARMUP_VCYCLES):
        machine.step_vcycle()
    start = time.perf_counter()
    machine.run(budget)
    elapsed = time.perf_counter() - start
    timed = machine.counters.vcycles - WARMUP_VCYCLES
    return timed / elapsed if elapsed > 0 else 0.0


def _measure(name: str) -> tuple[float, float]:
    """Best off/on rates, interleaved so thermal drift hits both."""
    best_off = best_on = 0.0
    for _ in range(REPEATS):
        best_off = max(best_off, _time_run(name, None))
        best_on = max(best_on, _time_run(name, Profiler()))
    return best_off, best_on


def _baseline_rates() -> dict[str, float]:
    if not ENGINE_BASELINE.exists():
        return {}
    data = json.loads(ENGINE_BASELINE.read_text())
    return {name: entry["fast_vcycles_per_sec"]
            for name, entry in data.get("designs", {}).items()}


def geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main() -> int:
    precompile(BENCH_DESIGNS, grid_side=GRID_SIDE)
    baselines = _baseline_rates()
    results: dict[str, dict] = {}
    for name in BENCH_DESIGNS:
        off, on = _measure(name)
        entry = {
            "off_vcycles_per_sec": round(off, 2),
            "on_vcycles_per_sec": round(on, 2),
            "profiler_overhead_percent": round((off / on - 1) * 100, 2)
            if on else None,
        }
        base = baselines.get(name)
        if base:
            entry["baseline_fast_vcycles_per_sec"] = base
            entry["vs_baseline_percent"] = round((base / off - 1) * 100, 2)
        results[name] = entry
        base_txt = (f"  vs baseline {entry['vs_baseline_percent']:+6.2f}%"
                    if base else "")
        print(f"{name:>6}: off {off:9.1f} Vc/s   on {on:9.1f} Vc/s   "
              f"profiler {entry['profiler_overhead_percent']:+6.2f}%"
              f"{base_txt}")

    off_geo = geomean([r["off_vcycles_per_sec"] for r in results.values()])
    on_geo = geomean([r["on_vcycles_per_sec"] for r in results.values()])
    base_geo = geomean([baselines[n] for n in results if n in baselines])
    zero_overhead = (base_geo / off_geo - 1) if (base_geo and off_geo) \
        else None
    payload = {
        "grid": f"{GRID_SIDE}x{GRID_SIDE}",
        "engine": "fast",
        "warmup_vcycles": WARMUP_VCYCLES,
        "repeats": REPEATS,
        "max_zero_observer_overhead": MAX_ZERO_OBSERVER_OVERHEAD,
        "designs": results,
        "geomean": {
            "off_vcycles_per_sec": round(off_geo, 2),
            "on_vcycles_per_sec": round(on_geo, 2),
            "baseline_fast_vcycles_per_sec": round(base_geo, 2)
            if base_geo else None,
            "zero_observer_overhead_percent":
                round(zero_overhead * 100, 2)
                if zero_overhead is not None else None,
            "profiler_overhead_percent":
                round((off_geo / on_geo - 1) * 100, 2) if on_geo else None,
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    if zero_overhead is None:
        print("note: no BENCH_engine.json baseline; overhead gate skipped")
        return 0
    if zero_overhead > MAX_ZERO_OBSERVER_OVERHEAD:
        print(f"FAIL: zero-observer geomean is {zero_overhead:.2%} slower "
              f"than the pre-obs baseline "
              f"(limit {MAX_ZERO_OBSERVER_OVERHEAD:.0%})", file=sys.stderr)
        return 1
    print(f"zero-observer overhead {zero_overhead:+.2%} vs baseline "
          f"(limit {MAX_ZERO_OBSERVER_OVERHEAD:.0%}): OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
