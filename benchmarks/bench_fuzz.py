"""Fuzzing-throughput benchmark: seeds per minute through each matrix.

The differential fuzzer's practical value scales with how many seeds it
can push through the oracle matrix per unit time.  This measures, over a
fixed seed block:

* ``quick_sps``   - seeds/s through the quick matrix (golden interpreter,
  serial baseline, strict machine);
* ``engines_sps`` - seeds/s adding the permissive and fast engines;
* ``full_sps``    - seeds/s through all thirteen fault-free oracles
  (compiler-option variants share compilations where options agree);
* ``shrink_s``    - wall time to minimize one seeded-fault repro
  (``golden-buggy-sub``) below 10 IR ops;
* ``batched``     - lane-seeds/s through the batched oracle
  (``fuzz_seed_batch``: one compile, B init-variant lanes per seed, one
  golden per lane), per vector lowering, with the speedup over the
  ``engines`` scalar matrix (the ISSUE 7 gate: >= 4x at B=64).

Run with::

    PYTHONPATH=src python benchmarks/bench_fuzz.py

Environment knobs: ``BENCH_FUZZ_SEEDS`` (seeds per matrix, default 5),
``BENCH_FUZZ_MATRICES`` (comma-separated subset), ``BENCH_FUZZ_BATCH``
(batch width, default 64; 0 skips the batched section).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fuzz import fuzz_seed, fuzz_seed_batch, generate, shrink  # noqa: E402
from repro.fuzz.shrink import oracle_predicate  # noqa: E402
from repro.machine.batch_codegen import have_numpy  # noqa: E402

N_SEEDS = int(os.environ.get("BENCH_FUZZ_SEEDS", "5"))
MATRICES = [m for m in os.environ.get(
    "BENCH_FUZZ_MATRICES", "quick,engines,full").split(",") if m]
BATCH_WIDTH = int(os.environ.get("BENCH_FUZZ_BATCH", "64"))
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fuzz.json"
SHRINK_SEED = 7          # known golden-buggy-sub trigger
SHRINK_BOUND = 10        # acceptance bound on minimized repro size


def _matrix_rate(matrix: str) -> dict:
    start = time.perf_counter()
    for seed in range(N_SEEDS):
        report = fuzz_seed(seed, matrix=matrix)
        assert report.ok, report.divergences[0].describe()
    elapsed = time.perf_counter() - start
    return {
        "seeds": N_SEEDS,
        "elapsed_s": round(elapsed, 3),
        "seeds_per_s": round(N_SEEDS / elapsed, 3),
    }


def _batched_rate(lowering: str, engines_sps: float | None) -> dict:
    start = time.perf_counter()
    for seed in range(N_SEEDS):
        report = fuzz_seed_batch(seed, width=BATCH_WIDTH,
                                 lowering=lowering)
        assert report.ok, report.divergences[0].describe()
        assert not report.rebind_fallback, f"seed {seed} rebind fallback"
    elapsed = time.perf_counter() - start
    lane_sps = N_SEEDS * BATCH_WIDTH / elapsed
    out = {
        "seeds": N_SEEDS,
        "width": BATCH_WIDTH,
        "elapsed_s": round(elapsed, 3),
        "lane_seeds_per_s": round(lane_sps, 3),
    }
    if engines_sps:
        out["speedup_vs_engines_x"] = round(lane_sps / engines_sps, 2)
    return out


def main() -> int:
    results: dict[str, dict] = {}
    for matrix in MATRICES:
        results[matrix] = _matrix_rate(matrix)
        r = results[matrix]
        print(f"{matrix:>8}: {r['seeds']} seeds in {r['elapsed_s']:7.2f}s "
              f"({r['seeds_per_s']:5.2f} seeds/s)")

    engines_sps = results.get("engines", {}).get("seeds_per_s")
    batched: dict[str, dict] = {}
    if BATCH_WIDTH:
        lowerings = ["list"] + (["numpy"] if have_numpy() else [])
        for lowering in lowerings:
            batched[lowering] = _batched_rate(lowering, engines_sps)
            b = batched[lowering]
            speed = (f", {b['speedup_vs_engines_x']:.1f}x vs engines"
                     if "speedup_vs_engines_x" in b else "")
            print(f"batch-{lowering:>5}: {b['seeds']} seeds x "
                  f"{b['width']} lanes in {b['elapsed_s']:7.2f}s "
                  f"({b['lane_seeds_per_s']:6.2f} lane-seeds/s{speed})")

    circuit = generate(SHRINK_SEED)
    predicate = oracle_predicate("golden-buggy-sub", 24)
    start = time.perf_counter()
    shrunk = shrink(circuit, predicate)
    shrink_s = time.perf_counter() - start
    print(f"  shrink: {shrunk.initial_ops} -> {shrunk.final_ops} IR ops "
          f"in {shrink_s:.2f}s ({shrunk.tests} oracle runs)")

    payload = {
        "seeds_per_matrix": N_SEEDS,
        "matrices": results,
        "batched": batched,
        "shrink": {
            "seed": SHRINK_SEED,
            "initial_ops": shrunk.initial_ops,
            "final_ops": shrunk.final_ops,
            "oracle_runs": shrunk.tests,
            "elapsed_s": round(shrink_s, 3),
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    if shrunk.final_ops > SHRINK_BOUND:
        print(f"FAIL: shrunk repro has {shrunk.final_ops} IR ops > "
              f"{SHRINK_BOUND}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
