"""Fig. 9 + Table 4: communication-aware partitioning (B) vs the
communication-oblivious longest-processing-time baseline (L), on the
full 15x15 grid (paper SS7.8.1).

Reports, per benchmark and per strategy: the VCPL (normalized to L as in
Fig. 9), the straggler's compute/send/NOp breakdown, the core count used
(the numbers above the paper's bars), and the total Send count (Table 4).

Paper shapes: B produces dramatically fewer Sends (28-94% reductions),
generally beats or matches L on VCPL while using no more cores.
"""

from harness import BENCH_ORDER, PAPER_TABLE4, compile_design, geomean, print_table


def _both():
    out = {}
    for name in BENCH_ORDER:
        for strategy in ("balanced", "lpt"):
            res = compile_design(name, merge_strategy=strategy)
            out[(name, strategy)] = {
                "vcpl": res.report.vcpl,
                "sends": res.report.send_count,
                "cores": res.report.cores_used,
                "breakdown": res.report.breakdown,
            }
    return out


def test_fig09_tab04_partitioning(benchmark):
    stats = benchmark(_both)

    rows = []
    for name in BENCH_ORDER:
        b = stats[(name, "balanced")]
        l = stats[(name, "lpt")]
        rows.append([
            name,
            l["vcpl"], b["vcpl"], round(b["vcpl"] / l["vcpl"], 2),
            l["cores"], b["cores"],
            l["sends"], b["sends"],
            round(100.0 * (b["sends"] - l["sends"]) / max(1, l["sends"]),
                  1),
        ])
    print_table(
        "Fig 9 + Table 4: L (LPT) vs B (balanced) on the 15x15 grid",
        ["bench", "L vcpl", "B vcpl", "B/L", "L cores", "B cores",
         "L sends", "B sends", "sends %"], rows)

    print_table(
        "Table 4 (paper): Send counts in thousands, L vs B",
        ["bench", "L (k)", "B (k)", "%"],
        [[n, *PAPER_TABLE4[n],
          round(100 * (PAPER_TABLE4[n][1] - PAPER_TABLE4[n][0])
                / PAPER_TABLE4[n][0], 1)] for n in BENCH_ORDER])

    # Straggler breakdown for Fig. 9's stacked bars.
    rows = []
    for name in BENCH_ORDER:
        for strategy in ("lpt", "balanced"):
            s = stats[(name, strategy)]
            bd = s["breakdown"]
            rows.append([name, "L" if strategy == "lpt" else "B",
                         bd["compute"], bd["send"], bd["nop"]])
    print_table("Fig 9 straggler breakdown (compute / send / NOp)",
                ["bench", "alg", "compute", "send", "nop"], rows)

    # ---- shape assertions -------------------------------------------
    # Table 4's headline: B reduces Sends on every benchmark.
    for name in BENCH_ORDER:
        b = stats[(name, "balanced")]["sends"]
        l = stats[(name, "lpt")]["sends"]
        assert b <= l, f"{name}: B sends {b} > L sends {l}"
    # ... and the reduction is substantial overall (paper: 28-94%; at
    # our smaller design scale the B merge consolidates less, so the
    # average reduction is smaller but still clearly present).
    reductions = [
        1 - stats[(n, "balanced")]["sends"]
        / max(1, stats[(n, "lpt")]["sends"])
        for n in BENCH_ORDER
    ]
    assert sum(reductions) / len(reductions) > 0.15
    assert sum(1 for r in reductions if r > 0.4) >= 2

    # Fig 9: B generally outperforms L on VCPL (geomean <= 1.0; the
    # paper itself shows one exception, vta).
    ratios = [stats[(n, "balanced")]["vcpl"] / stats[(n, "lpt")]["vcpl"]
              for n in BENCH_ORDER]
    assert geomean(ratios) <= 1.05
    assert sum(1 for r in ratios if r <= 1.0) >= 5

    # B never needs more cores than L by much (paper: "while using
    # fewer cores").
    for name in BENCH_ORDER:
        assert stats[(name, "balanced")]["cores"] <= \
            stats[(name, "lpt")]["cores"] * 1.2 + 2
