"""Checkpoint subsystem benchmark: size, latency, steady-state overhead.

Measures, across the nine-design registry on the fast engine, and
writes ``BENCH_checkpoint.json``:

* **snapshot size** - encoded bytes of a mid-run snapshot (the wire
  format compresses register/scratch/cache images, so this is far below
  the raw state size);
* **save latency** - capture + encode + atomic publish into a store;
* **restore latency** - decode + fingerprint check + machine
  reconstruction (including the fast path's trust restore);
* **steady-state overhead** - Vcycles/second of a checkpointed run
  (``checkpoint_every=CHECKPOINT_EVERY``) vs the same run without a
  store attached.

The gate is suite-level and time-weighted: enabling
``--checkpoint-every 100`` must not add more than
``MAX_CHECKPOINT_OVERHEAD`` (5%) to the *total* fast-engine wall-clock
across the nine-design registry.  That is the steady-state question -
what does periodic checkpointing cost per unit of simulation time -
and it weights each design by how long it actually simulates.
Per-design overheads are reported alongside, and they are measured
honestly: a single run of the shortest designs lasts ~10 ms, where a
best-of-N delta is dominated by timer noise and one-time setup rather
than checkpoint work (an earlier revision reported a spurious +41% for
jpeg this way).  Each per-design measurement therefore loops enough
fresh runs to accumulate at least ``MIN_MEASURE_SECONDS`` of plain
wall-clock (after an untimed warmup run), and the loop is what gets
best-of-``REPEATS``-ed, interleaved plain/checkpointed.  Designs that
finish before the first checkpoint interval still publish nothing -
their (near-zero) overhead is the true cost of attaching a store, and
``publishes_per_run`` says so explicitly.  The ``gate`` object records
the limit, the measured suite overhead, the per-design max/geomean,
and an explicit pass/fail that ``bench_suite.py`` surfaces.

Run with::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py
"""

from __future__ import annotations

import json
import math
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import BENCH_ORDER, machine_for, precompile  # noqa: E402

from repro import checkpoint as ck  # noqa: E402
from repro.designs import DESIGNS  # noqa: E402
from repro.machine import MachineConfig  # noqa: E402

BENCH_DESIGNS = tuple(BENCH_ORDER)
GRID_SIDE = 8
ENGINE = "fast"
CHECKPOINT_EVERY = 100
REPEATS = int(os.environ.get("BENCH_CKPT_REPEATS", "5"))
#: Minimum plain wall-clock a per-design measurement loop must cover;
#: short designs are looped (fresh run each iteration) until they do.
MIN_MEASURE_SECONDS = float(
    os.environ.get("BENCH_CKPT_MIN_SECONDS", "0.4"))
#: Allowed time-weighted slowdown of `--checkpoint-every 100` on the
#: fast engine vs the same run with no store attached.
MAX_CHECKPOINT_OVERHEAD = 0.05
CONFIG = MachineConfig(grid_x=GRID_SIDE, grid_y=GRID_SIDE)
OUT_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_checkpoint.json"


def _budget(name: str) -> int:
    return DESIGNS[name].cycles + 300


def _program(name: str):
    return machine_for(name, engine=ENGINE, grid_side=GRID_SIDE).program


def _snapshot_metrics(name: str, store_dir: str) -> dict:
    """Size and save/restore latency of one mid-run snapshot."""
    program = _program(name)
    machine = machine_for(name, engine=ENGINE, grid_side=GRID_SIDE)
    machine.run(max(1, _budget(name) // 2))
    store = ck.CheckpointStore(store_dir, keep=3)

    best_save = best_restore = math.inf
    blob = b""
    for _ in range(REPEATS):
        start = time.perf_counter()
        blob = ck.encode_snapshot(ck.capture(machine))
        path = store.publish(blob)
        best_save = min(best_save, time.perf_counter() - start)

        start = time.perf_counter()
        restored = ck.restore(ck.load_snapshot(path), program=program,
                              config=CONFIG)
        best_restore = min(best_restore, time.perf_counter() - start)
    assert restored.counters.vcycles == machine.counters.vcycles
    return {
        "snapshot_bytes": len(blob),
        "save_ms": round(best_save * 1e3, 3),
        "restore_ms": round(best_restore * 1e3, 3),
    }


def _time_run(name: str,
              store: ck.CheckpointStore | None) -> tuple[float, int, int]:
    """(elapsed seconds, Vcycles run, snapshots published) of one fresh
    driver run (optionally snapshotting every CHECKPOINT_EVERY
    Vcycles)."""
    program = _program(name)
    start = time.perf_counter()
    run = ck.run_with_checkpoints(
        program, _budget(name), config=CONFIG, engine=ENGINE,
        store=store, checkpoint_every=CHECKPOINT_EVERY if store else 0)
    elapsed = time.perf_counter() - start
    return elapsed, run.result.vcycles, len(run.published)


def _measure_overhead(name: str, store_dir: str,
                      ) -> tuple[float, float, int, int, int]:
    """Best (= fastest) plain/checkpointed loop seconds, interleaved.

    A *loop* is ``loops`` fresh runs back to back, with ``loops`` sized
    from an untimed warmup so each timed sample covers at least
    ``MIN_MEASURE_SECONDS`` of plain wall-clock - a single ~10 ms run
    is not a measurement.  Returns (plain_s, ckpt_s, vcycles_per_run,
    publishes_per_run, loops); the seconds are per-loop totals.
    """
    warmup, vcycles, _ = _time_run(name, None)   # untimed: JIT/caches
    loops = max(1, math.ceil(MIN_MEASURE_SECONDS / max(warmup, 1e-9)))
    best_plain = best_ckpt = math.inf
    publishes = 0
    for _ in range(REPEATS):
        elapsed = 0.0
        for _i in range(loops):
            sample, vcycles, _ = _time_run(name, None)
            elapsed += sample
        best_plain = min(best_plain, elapsed)
        elapsed = 0.0
        for _i in range(loops):
            store = ck.CheckpointStore(store_dir, keep=3)
            sample, _, publishes = _time_run(name, store)
            elapsed += sample
        best_ckpt = min(best_ckpt, elapsed)
    return best_plain, best_ckpt, vcycles, publishes, loops


def geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main() -> int:
    precompile(BENCH_DESIGNS, grid_side=GRID_SIDE)
    results: dict[str, dict] = {}
    total_plain = total_ckpt = 0.0
    with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
        for name in BENCH_DESIGNS:
            entry = _snapshot_metrics(name, os.path.join(tmp, name))
            plain, ckpt, vcycles, publishes, loops = _measure_overhead(
                name, os.path.join(tmp, name + "-run"))
            total_plain += plain
            total_ckpt += ckpt
            total_vcycles = vcycles * loops
            entry.update({
                "vcycles": vcycles,
                "measured_loops": loops,
                "plain_vcycles_per_sec": round(total_vcycles / plain, 2),
                "checkpointed_vcycles_per_sec": round(
                    total_vcycles / ckpt, 2),
                "overhead_percent": round((ckpt / plain - 1) * 100, 2),
                "publishes_per_run": publishes,
            })
            results[name] = entry
            print(f"{name:>6}: {entry['snapshot_bytes']:8d} B   "
                  f"save {entry['save_ms']:7.2f} ms   "
                  f"restore {entry['restore_ms']:7.2f} ms   "
                  f"overhead {entry['overhead_percent']:+6.2f}% "
                  f"(x{loops} runs/sample)"
                  f"{'' if publishes else '   (finishes before first checkpoint)'}")

    overhead = total_ckpt / total_plain - 1
    design_overheads = [r["overhead_percent"] for r in results.values()]
    # Geomean over slowdown ratios (overheads may be negative), then
    # back to a percentage.
    geomean_overhead = (geomean(
        [1 + p / 100 for p in design_overheads]) - 1) * 100
    gate = {
        "limit_percent": MAX_CHECKPOINT_OVERHEAD * 100,
        "suite_overhead_percent": round(overhead * 100, 2),
        "max_design_overhead_percent": round(max(design_overheads), 2),
        "geomean_design_overhead_percent": round(geomean_overhead, 2),
        "passed": overhead <= MAX_CHECKPOINT_OVERHEAD,
    }
    payload = {
        "grid": f"{GRID_SIDE}x{GRID_SIDE}",
        "engine": ENGINE,
        "checkpoint_every": CHECKPOINT_EVERY,
        "repeats": REPEATS,
        "min_measure_seconds": MIN_MEASURE_SECONDS,
        "max_checkpoint_overhead": MAX_CHECKPOINT_OVERHEAD,
        "gate": gate,
        "designs": results,
        "suite": {
            "geomean_snapshot_bytes": round(geomean(
                [r["snapshot_bytes"] for r in results.values()]), 1),
            "geomean_save_ms": round(geomean(
                [r["save_ms"] for r in results.values()]), 3),
            "geomean_restore_ms": round(geomean(
                [r["restore_ms"] for r in results.values()]), 3),
            "plain_seconds": round(total_plain, 4),
            "checkpointed_seconds": round(total_ckpt, 4),
            "overhead_percent": round(overhead * 100, 2),
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    if overhead > MAX_CHECKPOINT_OVERHEAD:
        print(f"FAIL: checkpoint-every-{CHECKPOINT_EVERY} adds "
              f"{overhead:.2%} to the suite's fast-engine wall-clock "
              f"(limit {MAX_CHECKPOINT_OVERHEAD:.0%})", file=sys.stderr)
        return 1
    print(f"checkpoint overhead {overhead:+.2%} of suite wall-clock "
          f"({total_plain:.2f}s -> {total_ckpt:.2f}s, "
          f"limit {MAX_CHECKPOINT_OVERHEAD:.0%}): OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
