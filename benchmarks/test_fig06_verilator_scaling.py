"""Fig. 6 (and appendix Figs. 11/12): Verilator's parallel self-relative
scaling on the nine benchmarks, on the EPYC server (Fig. 6), the Xeon
(Fig. 11), and the desktop i7 (Fig. 12).

Each curve is the multithread cost model over the design's Sarkar
macro-task graph.  Paper shapes: small benchmarks (bc, blur, jpeg) never
profit from threads; larger ones peak at modest thread counts; "at eight
processors, all benchmarks have reached their scalability limit".
"""

from harness import BENCH_ORDER, PLATFORMS, macrotask_graph, print_table
from repro.baseline import scaling

THREADS = [1, 2, 4, 8, 16]


def _curves(platform_key: str):
    platform = PLATFORMS[platform_key]
    return {
        name: scaling(macrotask_graph(name), platform, THREADS)
        for name in BENCH_ORDER
    }


def test_fig06_epyc_scaling(benchmark):
    curves = benchmark(lambda: _curves("epyc"))
    _report("Fig 6: Verilator self-relative speedup on EPYC 7V73X",
            curves)
    _assert_shapes(curves)


def test_fig11_xeon_scaling(benchmark):
    curves = benchmark(lambda: _curves("xeon"))
    _report("Fig 11: Verilator self-relative speedup on Xeon 8272CL",
            curves)
    _assert_shapes(curves)


def test_fig12_i7_scaling(benchmark):
    curves = benchmark(lambda: _curves("i7"))
    _report("Fig 12: Verilator self-relative speedup on i7-9700K",
            curves)
    _assert_shapes(curves)


def _report(title, curves):
    rows = []
    for name in BENCH_ORDER:
        curve = curves[name]
        base = curve[1]
        rows.append([name] + [round(curve[p] / base, 2)
                              for p in THREADS if p in curve])
    print_table(title, ["bench"] + [f"P={p}" for p in THREADS], rows)


def _assert_shapes(curves):
    # Small benchmarks do not profit from multithreading.
    for name in ("bc", "blur", "jpeg"):
        curve = curves[name]
        assert max(curve.values()) <= 1.3 * curve[1], name

    # Verilator's scalability limit is reached by ~8 threads: 16 threads
    # never improve on the best of <= 8.
    for name in BENCH_ORDER:
        curve = curves[name]
        if 16 in curve:
            best8 = max(v for p, v in curve.items() if p <= 8)
            assert curve[16] <= best8 * 1.05, name

    # The largest benchmark gains more from threads than the smallest.
    big = curves["vta"]
    small = curves["jpeg"]
    big_speedup = max(big.values()) / big[1]
    small_speedup = max(small.values()) / small[1]
    assert big_speedup >= small_speedup
