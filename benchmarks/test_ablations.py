"""Ablations of the design choices DESIGN.md calls out (beyond the
paper's own Fig. 9/10 ablations):

* current/next register coalescing (paper SS6.3, [49]) on vs off,
* memory-to-register conversion (the Yosys behaviour) on vs off,
* MILP vs greedy custom-function selection,
* pipeline result-latency sensitivity (the one microarchitectural
  parameter the paper does not publish).
"""

import pytest

from harness import print_table
from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import PROTOTYPE, MachineConfig

ABLATION_DESIGNS = ("mm", "cgra", "jpeg")


def _compile(name, **kw):
    return compile_circuit(DESIGNS[name].build(),
                           CompilerOptions(config=PROTOTYPE, **kw))


def test_ablation_coalescing(benchmark):
    def run():
        return {
            (name, flag): _compile(name, coalesce_state=flag).report
            for name in ABLATION_DESIGNS for flag in (True, False)
        }
    reports = benchmark(run)
    rows = []
    for name in ABLATION_DESIGNS:
        on = reports[(name, True)]
        off = reports[(name, False)]
        rows.append([name, on.vcpl, off.vcpl,
                     round(on.vcpl / off.vcpl, 2),
                     on.lowered_instructions])
    print_table("Ablation: current/next coalescing",
                ["bench", "vcpl on", "vcpl off", "ratio", "instrs"],
                rows)
    # Coalescing removes commit Movs: never worse, and it helps somewhere.
    assert all(reports[(n, True)].vcpl <= 1.05 * reports[(n, False)].vcpl
               for n in ABLATION_DESIGNS)
    assert any(reports[(n, True)].vcpl < reports[(n, False)].vcpl
               for n in ABLATION_DESIGNS)


def test_ablation_mem2reg(benchmark):
    def run():
        out = {}
        for name in ("mm", "vta"):
            out[(name, "on")] = _compile(name).report
            out[(name, "off")] = _compile(name, mem2reg_max_words=0).report
        return out
    reports = benchmark(run)
    rows = [[name,
             reports[(name, "on")].vcpl, reports[(name, "on")].cores_used,
             reports[(name, "off")].vcpl,
             reports[(name, "off")].cores_used]
            for name in ("mm", "vta")]
    print_table("Ablation: memory-to-register conversion",
                ["bench", "vcpl on", "cores on", "vcpl off", "cores off"],
                rows)
    # Without mem2reg the buffer-centric accelerator collapses onto few
    # cores (memory co-location) and slows down dramatically; mm's small
    # ROMs, in contrast, are cheaper as scratchpad lookups than as
    # flattened mux trees - the conversion is a trade, not a free win.
    on, off = reports[("vta", "on")], reports[("vta", "off")]
    assert off.vcpl > 2 * on.vcpl
    assert off.cores_used < on.cores_used
    mm_ratio = reports[("mm", "off")].vcpl / reports[("mm", "on")].vcpl
    assert 0.5 < mm_ratio < 1.5  # same ballpark either way


def test_ablation_custom_selector(benchmark):
    def run():
        return {
            (name, sel): _compile(name, custom_selector=sel).report
            for name in ("bc", "cgra") for sel in ("milp", "greedy")
        }
    reports = benchmark(run)
    rows = []
    for name in ("bc", "cgra"):
        milp = reports[(name, "milp")].custom
        greedy = reports[(name, "greedy")].custom
        rows.append([name,
                     round(milp.reduction_percent, 2),
                     round(greedy.reduction_percent, 2)])
    print_table("Ablation: MILP vs greedy cone selection",
                ["bench", "milp red %", "greedy red %"], rows)
    # Exact selection never saves fewer instructions than greedy.
    for name in ("bc", "cgra"):
        milp = reports[(name, "milp")].custom
        greedy = reports[(name, "greedy")].custom
        assert milp.instructions_after <= greedy.instructions_after + 2


def test_ablation_result_latency(benchmark):
    def run():
        out = {}
        for latency in (2, 4, 8, 12):
            config = MachineConfig(grid_x=15, grid_y=15,
                                   result_latency=latency)
            res = compile_circuit(DESIGNS["jpeg"].build(),
                                  CompilerOptions(config=config))
            out[latency] = res.report.vcpl
        return out
    vcpls = benchmark(run)
    print_table("Ablation: pipeline result latency (jpeg, serial chain)",
                ["latency", "vcpl"],
                [[k, v] for k, v in sorted(vcpls.items())])
    # A serial design's VCPL grows monotonically with the hazard
    # distance - the microarchitectural reason jpeg loses on Manticore.
    keys = sorted(vcpls)
    for a, b in zip(keys, keys[1:]):
        assert vcpls[a] <= vcpls[b]
    assert vcpls[12] > 1.5 * vcpls[2]


def test_ablation_heterogeneous_grid(benchmark):
    """Paper SSA.7: scratchpad-less cores free URAMs for more cores.
    Verify the resource math and that a register-only design compiles
    and matches on a grid where only one core has a scratchpad."""
    from repro.fpga.resources import max_cores, max_cores_heterogeneous
    from repro.machine import Machine, MachineConfig
    from repro.netlist import NetlistInterpreter

    def run():
        config = MachineConfig(grid_x=6, grid_y=6, scratchpad_cores=1)
        circuit = DESIGNS["mc"].build()
        golden = NetlistInterpreter(DESIGNS["mc"].build()).run(400)
        result = compile_circuit(circuit, CompilerOptions(config=config))
        mres = Machine(result.program, config).run(400)
        return golden, mres, result.report

    golden, mres, report = benchmark(run)
    rows = [[f"{frac:.2f}", max_cores_heterogeneous(frac)]
            for frac in (1.0, 0.5, 0.25, 0.0)]
    print_table("Ablation: heterogeneous grid core bound (U200)",
                ["scratchpad fraction", "max cores"], rows)
    assert mres.displays == golden.displays
    assert max_cores_heterogeneous(0.5) > 1.3 * max_cores()
