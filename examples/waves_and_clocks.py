"""Two of the paper's SS8 future-work items, working together:

* multiple RTL clock domains (tracked via activation enables), and
* out-of-band waveform collection (VCD, viewable in GTKWave).

Builds a dual-clock design - a fast accumulator fed by a slow (clk/4)
pattern generator - compiles it for a small Manticore grid, runs it with
waveform probes attached to the RTL registers, and writes `dual.vcd`.

Run:  python examples/waves_and_clocks.py [out.vcd]
"""

import sys

from repro import CircuitBuilder, CompilerOptions, compile_circuit
from repro.machine import Machine, MachineConfig
from repro.machine.waveform import WaveformCollector, trace_map_for
from repro.netlist.clocking import clock_domain


def build():
    m = CircuitBuilder("dual")
    fast = m.register("fast", 16)
    fast.next = (fast + 1).trunc(16)

    slow_dom = clock_domain(m, "slow", 4)
    pattern = slow_dom.register("pattern", 8, init=1)
    pattern.next = m.cat(pattern.bits(7, 1), pattern.bits(0, 7))  # rotate

    acc = m.register("acc", 16)
    acc.next = (acc + pattern.zext(16)).trunc(16)

    m.display(fast == 24, "acc=%d pattern=%d", acc, pattern)
    m.finish(fast == 24)
    return m.build()


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "dual.vcd"
    config = MachineConfig(grid_x=3, grid_y=3)
    result = compile_circuit(build(), CompilerOptions(config=config))
    machine = Machine(result.program, config)
    probes = trace_map_for(result, names=["fast", "acc", "pattern"])
    collector = WaveformCollector(machine, probes)
    collector.run(100)
    with open(out, "w") as f:
        collector.write_vcd(f)
    print(f"displays : {machine.displays}")
    print(f"probes   : {[p.label for p in probes]}")
    print(f"samples  : {len(collector.samples)} Vcycles")
    print(f"VCD      : {out}")


if __name__ == "__main__":
    main()
