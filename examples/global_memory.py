"""Global stall in action - a miniature of the paper's Fig. 8.

Runs the FIFO and RAM microbenchmarks at growing memory sizes on a 1x1
grid.  At 1 KiB the buffer lives in the core's scratchpad (no stalls);
beyond that it sits in DRAM behind the privileged core's cache, and every
access freezes the whole machine (clock gating).  The FIFO's sequential
addresses hit almost always; the RAM's xorshift addresses miss once the
footprint exceeds the 128 KiB cache.

Run:  python examples/global_memory.py
"""

from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import micro
from repro.machine import Machine, MachineConfig


def run_one(builder, size: int, cycles: int = 512):
    config = MachineConfig(grid_x=1, grid_y=1)
    circuit = builder(size, cycles=cycles)
    result = compile_circuit(circuit, CompilerOptions(config=config))
    machine = Machine(result.program, config)
    res = machine.run(cycles + 8)
    c = res.counters
    return {
        "total": c.total_cycles,
        "stall": c.stall_cycles,
        "hit_rate": res.cache.hit_rate,
        "accesses": res.cache.accesses,
        "per_vcycle": c.total_cycles / max(1, c.vcycles),
    }


def main() -> None:
    sizes = [1 << 10, 64 << 10, 512 << 10]
    for label, builder in (("FIFO", micro.build_fifo),
                           ("RAM", micro.build_ram)):
        print(f"== {label}: one load + one store per Vcycle ==")
        base = None
        print(f"{'size':>8}{'cycles/Vcycle':>15}{'normalized':>12}"
              f"{'stall %':>9}{'hit rate':>10}")
        for size in sizes:
            stats = run_one(builder, size)
            base = base or stats["per_vcycle"]
            print(f"{size // 1024:>6}Ki{stats['per_vcycle']:>15.1f}"
                  f"{stats['per_vcycle'] / base:>12.2f}"
                  f"{100 * stats['stall'] / stats['total']:>9.1f}"
                  f"{stats['hit_rate']:>10.2f}")
        print()


if __name__ == "__main__":
    main()
