// A hierarchical Verilog design exercising the frontend end to end:
// a UART transmitter looped back into a UART receiver, with a test
// driver that streams a message and checks every received byte.
//
//   python -m repro simulate examples/uart_loopback.v
//   python -m repro run examples/uart_loopback.v --grid 4 4 --vcd uart.vcd --trace rx__state,tx__state
//   python -m repro compile examples/uart_loopback.v --asm uart.s

module uart_tx(input clk, input [7:0] data, input start,
               output line, output busy);
  parameter DIV = 4;                 // clocks per bit
  reg [3:0] state = 0;               // 0 idle, 1 start, 2..9 data, 10 stop
  reg [2:0] divcnt = 0;
  reg [7:0] shift = 0;
  reg line_r = 1;
  assign line = line_r;
  assign busy = |state;

  always @(posedge clk) begin
    if (state == 0) begin
      line_r <= 1'b1;
      if (start) begin
        shift <= data;
        state <= 1;
        divcnt <= 0;
        line_r <= 1'b0;              // start bit
      end
    end else begin
      divcnt <= divcnt + 1;
      if (divcnt == DIV - 1) begin
        divcnt <= 0;
        if (state >= 1 && state <= 8) begin
          line_r <= shift[0];
          shift <= {1'b0, shift[7:1]};
          state <= state + 1;
        end else begin
          if (state == 9) begin
            line_r <= 1'b1;          // stop bit
            state <= 10;
          end else begin
            state <= 0;
          end
        end
      end
    end
  end
endmodule

module uart_rx(input clk, input line, output [7:0] data, output valid);
  parameter DIV = 4;
  reg [3:0] state = 0;
  reg [2:0] divcnt = 0;
  reg [7:0] shift = 0;
  reg [7:0] data_r = 0;
  reg valid_r = 0;
  assign data = data_r;
  assign valid = valid_r;

  always @(posedge clk) begin
    valid_r <= 0;
    if (state == 0) begin
      if (line == 0) begin            // start bit edge
        state <= 1;
        divcnt <= 0;                    // first sample lands mid-d0
      end
    end else begin
      divcnt <= divcnt + 1;
      if (divcnt == DIV - 1) begin
        divcnt <= 0;
        if (state >= 1 && state <= 8) begin
          shift <= {line, shift[7:1]};
          state <= state + 1;
        end else begin
          data_r <= shift;
          valid_r <= 1;
          state <= 0;
        end
      end
    end
  end
endmodule

module top();
  // Message ROM and driver state.
  reg [7:0] message [0:7];
  reg [3:0] sent = 0;
  reg [3:0] received = 0;
  reg [15:0] cyc = 0;
  reg started = 0;

  wire line;
  wire busy;
  wire [7:0] rx_data;
  wire rx_valid;
  reg [7:0] tx_data;
  reg start;

  uart_tx tx (.clk(clk), .data(tx_data), .start(start), .line(line),
              .busy(busy));
  uart_rx rx (.clk(clk), .line(line), .data(rx_data),
              .valid(rx_valid));

  integer i;
  always @(*) begin
    tx_data = message[sent[2:0]];
    start = 0;
    if (started == 0) start = 0;
    if (busy == 0 && sent < 8 && cyc > 2) start = 1;
  end

  always @(posedge clk) begin
    cyc <= cyc + 1;
    started <= 1;
    for (i = 0; i < 8; i = i + 1)
      if (cyc == 0) message[i] <= 8'h41 + i;   // "ABCDEFGH"
    if (start && !busy) sent <= sent + 1;
    if (rx_valid) begin
      $display("received %c (byte %d)", rx_data, received);
      received <= received + 1;
    end
    if (received == 8) $display("loopback complete after %d cycles", cyc);
    if (received == 8) $finish;
    if (cyc == 2000) $finish;   // watchdog
  end
endmodule
