"""Quickstart: build a small design, simulate it three ways.

1. the golden netlist interpreter (reference semantics),
2. the functional lower interpreter on the compiled program,
3. the cycle-accurate Manticore machine model (through the bootloader
   binary), reporting the compiler's VCPL and the projected simulation
   rate at the FPGA prototype's clock.

Run:  python examples/quickstart.py
"""

from repro import CircuitBuilder, CompilerOptions, simulate_on_manticore
from repro.machine import MachineConfig
from repro.netlist import run_circuit


def build_gcd(width: int = 16) -> "Circuit":
    """A classic: GCD by repeated subtraction, with a $display driver."""
    m = CircuitBuilder("gcd")
    a = m.register("a", width, init=270)
    b = m.register("b", width, init=192)
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)

    a_bigger = b.ltu(a)
    done = (b == 0)
    a.next = m.mux(done, m.mux(a_bigger, a, (a - b).trunc(width)), a)
    b.next = m.mux(done, m.mux(a_bigger, (b - a).trunc(width), b), b)

    m.display(done & (cyc == 40), "gcd(270, 192) = %d", a)
    m.finish(cyc == 40)
    return m.build()


def main() -> None:
    circuit = build_gcd()

    print("== golden interpreter ==")
    golden = run_circuit(circuit, 100)
    for line in golden.displays:
        print("  $display:", line)
    print(f"  finished after {golden.cycles} cycles")

    print("\n== Manticore (compile + cycle-accurate machine) ==")
    config = MachineConfig(grid_x=4, grid_y=4)
    run = simulate_on_manticore(build_gcd(), max_vcycles=100,
                                options=CompilerOptions(config=config))
    for line in run.displays:
        print("  $display:", line)
    report = run.report
    print(f"  cores used        : {report.cores_used}")
    print(f"  VCPL              : {report.vcpl} machine cycles / RTL cycle")
    print(f"  Sends per Vcycle  : {report.send_count}")
    print(f"  binary size       : {run.binary_bytes} bytes")
    print(f"  rate @ 475 MHz    : "
          f"{report.simulated_rate_khz(475.0):.1f} kHz")
    assert run.displays == golden.displays, "simulators disagree!"
    print("\nmachine output matches the golden interpreter - "
          "the schedule is hazard- and collision-free.")


if __name__ == "__main__":
    main()
