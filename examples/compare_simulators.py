"""Manticore vs the Verilator-like baseline on one benchmark - a
single-row version of the paper's Table 3.

For a chosen design this script reports:

* the design's per-cycle instruction estimate (Table 3's "# instr."),
* modeled serial Verilator rates on the desktop and server platforms,
* modeled multithreaded Verilator rates (Sarkar macro-tasks + the
  calibrated thread model),
* Manticore's compiler-predicted rate (475 MHz / VCPL) and the resulting
  speedups.

Run:  python examples/compare_simulators.py [design]
"""

import sys

from repro.baseline import (
    best_mt_rate_khz,
    instruction_estimate,
    macrotasks_for,
    modeled_serial_rate_khz,
)
from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import PROTOTYPE
from repro.perfmodel import EPYC_7V73X, I7_9700K


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mm"
    info = DESIGNS[name]
    circuit = info.build()
    est = instruction_estimate(circuit)
    print(f"design {name!r}: {len(circuit.ops)} netlist ops, "
          f"~{est} x86 instructions per RTL cycle")

    print("\ncompiling for the 225-core prototype ...")
    result = compile_circuit(info.build(),
                             CompilerOptions(config=PROTOTYPE))
    manticore_khz = result.report.simulated_rate_khz(475.0)
    print(f"  VCPL {result.report.vcpl}, {result.report.cores_used} "
          f"cores, {result.report.send_count} Sends/Vcycle")

    graph = macrotasks_for(circuit)
    rows = []
    for platform in (I7_9700K, EPYC_7V73X):
        serial = modeled_serial_rate_khz(circuit, platform)
        threads, mt = best_mt_rate_khz(graph, platform)
        rows.append((platform.name, serial, mt, threads))

    print(f"\n{'platform':<14}{'serial kHz':>12}{'MT kHz':>10}"
          f"{'threads':>9}{'xS':>8}{'xMT':>8}")
    for pname, serial, mt, threads in rows:
        print(f"{pname:<14}{serial:>12.1f}{mt:>10.1f}{threads:>9d}"
              f"{manticore_khz / serial:>8.2f}{manticore_khz / mt:>8.2f}")
    print(f"\nManticore (225 cores @ 475 MHz): {manticore_khz:.1f} kHz")


if __name__ == "__main__":
    main()
