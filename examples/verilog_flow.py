"""The paper's Fig. 13 flow: Verilog in, Manticore binary out.

Parses the paper's example counter (a Verilog module with $display and
$finish), simulates it with the golden interpreter, compiles it for a
Manticore grid, and runs the binary on the cycle-accurate machine model -
showing the $display traffic being serviced by the host through the
global-stall exception mechanism (paper SSA.3.2).

Run:  python examples/verilog_flow.py
"""

from repro import CompilerOptions, compile_circuit, parse_verilog
from repro.machine import Machine, MachineConfig
from repro.netlist import run_circuit

FIG13 = """
// Paper Fig. 13: a counter that reports parity every cycle.
module counter();
  reg [31:0] counter = 0;
  always @(posedge clock) begin
    counter <= counter + 1;
    if (counter[0] == 1'b0)
      $display("%d is an even number", counter);
    else
      $display("%d is an odd number", counter);
    if (counter == 20)
      $finish;
  end
endmodule
"""


def main() -> None:
    circuit = parse_verilog(FIG13)
    print(f"parsed module {circuit.name!r}: {len(circuit.ops)} netlist "
          f"ops, {len(circuit.registers)} registers")

    golden = run_circuit(circuit, 1000)
    print(f"golden: {golden.cycles} cycles, "
          f"{len(golden.displays)} $display lines")

    config = MachineConfig(grid_x=2, grid_y=2)
    result = compile_circuit(parse_verilog(FIG13),
                             CompilerOptions(config=config))
    report = result.report
    print(f"compiled: {report.cores_used} cores, VCPL {report.vcpl}, "
          f"{report.lowered_instructions} lower-assembly instructions")

    machine = Machine(result.program, config)
    mres = machine.run(1000)
    print(f"machine: {mres.vcycles} Vcycles, "
          f"{mres.counters.exceptions} host exceptions serviced, "
          f"{mres.counters.stall_cycles} stall cycles")
    for line in mres.displays[:4]:
        print("  ", line)
    print("   ...")
    for line in mres.displays[-2:]:
        print("  ", line)
    assert mres.displays == golden.displays
    print("display streams identical across golden and machine runs.")


if __name__ == "__main__":
    main()
