"""Manticore multicore scaling for one design - a miniature of Fig. 7.

Sweeps the number of cores the compiler may use and reports the
compiler-predicted VCPL (machine cycles per simulated RTL cycle) and the
speedup over the fewest-cores configuration.  The paper's Fig. 7 is
produced exactly this way: "The speedup numbers are predicted by
Manticore's compiler instead of actual execution, since the compiler can
accurately count cycles."

Run:  python examples/scaling_study.py [design] [max_cores...]
"""

import sys

from repro.compiler import CompilerError, CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import PROTOTYPE


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "cgra"
    counts = [int(a) for a in sys.argv[2:]] or [1, 2, 4, 8, 16, 32, 64,
                                                128, 225]
    info = DESIGNS[name]
    print(f"design {name!r} ({info.description})")
    print(f"{'cores':>7}{'VCPL':>8}{'kHz @475MHz':>13}{'speedup':>9}")
    base_vcpl = None
    for cores in counts:
        try:
            result = compile_circuit(
                info.build(),
                CompilerOptions(config=PROTOTYPE, max_cores=cores))
        except CompilerError as exc:
            print(f"{cores:>7}  ({exc})")
            continue
        vcpl = result.report.vcpl
        base_vcpl = base_vcpl or vcpl
        rate = result.report.simulated_rate_khz(475.0)
        print(f"{result.report.cores_used:>7}{vcpl:>8}{rate:>13.1f}"
              f"{base_vcpl / vcpl:>9.2f}")


if __name__ == "__main__":
    main()
