// A multi-module packet switch exercising the widened frontend subset
// end to end: hierarchical instantiation, localparam constants, an
// initial block filling a header ROM (explicit stores + a for loop),
// two clocked always blocks in one module, and a casez priority
// classifier.  Deterministic and self-finishing:
//
//   python -m repro simulate examples/packet_switch.v
//   python -m repro run examples/packet_switch.v --grid 4 4
//   python -m repro workloads run packet-switch

module lfsr16(input clk, output [15:0] value);
  parameter SEED = 16'hace1;
  reg [15:0] r = SEED;
  assign value = r;
  always @(posedge clk) begin
    r <= {r[14:0], r[15] ^ r[13] ^ r[12] ^ r[10]};
  end
endmodule

// casez priority decode of a packet header: highest set flag bit wins,
// all-zero flags drop the packet.
module classifier(input [15:0] header,
                  output [1:0] port_sel, output drop);
  localparam PORT_BULK = 0;
  reg [1:0] sel_r;
  reg drop_r;
  assign port_sel = sel_r;
  assign drop = drop_r;
  always @(*) begin
    sel_r = PORT_BULK;
    drop_r = 0;
    casez (header[7:0])
      8'b1???????: sel_r = 3;        // control traffic
      8'b01??????: sel_r = 2;
      8'b001?????: sel_r = 1;
      8'b0001????: sel_r = 0;
      default:     drop_r = 1;       // no flag bit set
    endcase
  end
endmodule

// per-port weight lookup (plain case through hierarchy)
module portmap(input [1:0] sel, output [7:0] weight);
  reg [7:0] w;
  assign weight = w;
  always @(*) begin
    case (sel)
      0: w = 1;
      1: w = 3;
      2: w = 7;
      default: w = 15;
    endcase
  end
endmodule

module top();
  localparam NPKT = 24;
  localparam WATCHDOG = 400;

  reg [15:0] rom [0:23];
  integer i;
  initial begin
    rom[0] = 16'h8001;               // explicit control packet
    rom[1] = 16'h000f;               // explicit drop (no flag bits)
    for (i = 2; i < 24; i = i + 1)
      rom[i] = i * 5197 + 11;
  end

  reg [15:0] cyc = 0;
  reg [7:0] sent = 0;
  reg [15:0] header = 0;
  reg valid = 0;

  wire [1:0] port_sel;
  wire drop;
  wire [15:0] payload;
  wire [7:0] weight;
  classifier cls (.header(header), .port_sel(port_sel),
                  .drop(drop));
  portmap pmap (.sel(port_sel), .weight(weight));
  lfsr16 gen (.clk(clk), .value(payload));

  // Injector: stream the ROM through the classifier, one header per
  // cycle.
  always @(posedge clk) begin
    cyc <= cyc + 1;
    valid <= 0;
    if (sent < NPKT) begin
      header <= rom[sent];
      valid <= 1;
      sent <= sent + 1;
    end
  end

  // Scoreboard: second clocked block in the same module.
  reg [7:0] ndone = 0;
  reg [7:0] dropped = 0;
  reg [31:0] acc = 0;
  reg [7:0] counts [0:3];
  initial begin
    for (i = 0; i < 4; i = i + 1)
      counts[i] = 0;
  end

  always @(posedge clk) begin
    if (valid) begin
      ndone <= ndone + 1;
      if (drop) begin
        dropped <= dropped + 1;
      end else begin
        acc <= acc + header + payload + weight;
        counts[port_sel] <= counts[port_sel] + 1;
      end
    end
    if (ndone == NPKT) begin
      $display("switch: %d packets, %d dropped, acc %x", ndone, dropped,
               acc);
      $display("ports: %d %d %d %d", counts[0], counts[1], counts[2],
               counts[3]);
      $finish;
    end
    if (cyc == WATCHDOG) $finish;
  end
endmodule
