"""Tests for the assembly printer/assembler (paper Fig. 13 syntax)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import isa
from repro.compiler import CompilerOptions, compile_circuit
from repro.isa.asm import (
    AsmError,
    format_instruction,
    format_process,
    format_program,
    parse_instruction,
    parse_process,
)
from repro.machine import TINY

from repro.fuzz.generator import counter_circuit

ROUNDTRIP_CASES = [
    isa.Nop(),
    isa.Set("count", 20),
    isa.Set(5, 0xBEEF),
    isa.Alu("ADD", 7, 4, 1),
    isa.Alu("SEQ", 2047, 0, 1),
    isa.Mux("v8", "v3", "v1", "v0"),
    isa.Slice("v3", "v4", 0, 1),
    isa.AddCarry("lo", "a", "b"),
    isa.SetCarry(1),
    isa.Custom("x", 31, ("a", "b", "c", "d")),
    isa.Send(0, 4, 4),
    isa.Send(42, 17, 99),
    isa.LocalLoad("d", "base", 512),
    isa.LocalStore("s", "base", 0),
    isa.Predicate("pflag"),
    isa.GlobalLoad("v", ("hi", "mid", "lo")),
    isa.GlobalStore("v", (1, 2, 3)),
    isa.Expect(5, 0, 1),
]


class TestRoundTrip:
    @pytest.mark.parametrize("instr", ROUNDTRIP_CASES,
                             ids=lambda i: format_instruction(i))
    def test_instruction(self, instr):
        text = format_instruction(instr)
        assert parse_instruction(text) == instr

    @given(st.integers(0, 2047), st.integers(0, 2047),
           st.integers(0, 2047),
           st.sampled_from(["ADD", "SUB", "XOR", "MULH", "SLTS"]))
    @settings(max_examples=25, deadline=None)
    def test_alu_property(self, rd, rs1, rs2, op):
        instr = isa.Alu(op, rd, rs1, rs2)
        assert parse_instruction(format_instruction(instr)) == instr

    def test_comments_ignored(self):
        assert parse_instruction("NOP // idle") == isa.Nop()
        assert parse_instruction(
            "SEND p0.$r4, $r4 // p0.$r4 = counter") == \
            isa.Send(0, 4, 4)

    def test_hex_immediates(self):
        assert parse_instruction("SET $x, 0xFF") == isa.Set("x", 255)

    def test_errors(self):
        with pytest.raises(AsmError):
            parse_instruction("FROB $a, $b")
        with pytest.raises(AsmError):
            parse_instruction("ADD a, b, c")  # missing $ sigils


class TestProcessListing:
    def test_process_roundtrip(self):
        body = [
            isa.Slice(3, 4, 0, 1),
            isa.Alu("SEQ", 5, 4, 2),
            isa.Send(0, 4, 4),
            isa.Alu("ADD", 4, 4, 1),
        ]
        text = format_process(1, body, reg_init={1: 1, 2: 20})
        pid, parsed = parse_process(text)
        assert pid == 1
        assert parsed == body

    def test_compiled_program_dump(self):
        result = compile_circuit(counter_circuit(),
                                 CompilerOptions(config=TINY))
        listing = format_program(result.program)
        assert ".p0:" in listing
        assert "privileged" in listing
        assert "EXPECT" in listing       # the $display/$finish traps
        assert "EPILOGUE_LENGTH" in listing
        # every non-comment line parses back
        for line in listing.splitlines():
            stripped = line.split("//")[0].strip()
            if not stripped or stripped.startswith("."):
                continue
            parse_instruction(stripped)

    def test_image_dump(self):
        result = compile_circuit(counter_circuit(),
                                 CompilerOptions(config=TINY))
        listing = format_program(result.image)
        assert "SEND" in listing or "MOV" in listing
