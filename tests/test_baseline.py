"""Tests for the Verilator-like baseline: serial simulation, Sarkar
macro-task coarsening, and the multithreaded cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baseline import (
    SerialSimulator,
    assign_static,
    best_mt_rate_khz,
    build_macrotask_graph,
    coarsen,
    instruction_estimate,
    macrotasks_for,
    modeled_serial_rate_khz,
    scaling,
    simulate_multithreaded,
)
from repro.designs import DESIGNS
from repro.netlist import run_circuit
from repro.perfmodel import EPYC_7V73X, I7_9700K

from repro.fuzz.generator import accumulator_circuit, counter_circuit, random_circuit


class TestSerial:
    def test_matches_golden(self):
        sim = SerialSimulator(counter_circuit())
        result = sim.run(100)
        golden = run_circuit(counter_circuit(), 100)
        assert result.displays == golden.displays

    def test_measured_rate_positive(self):
        sim = SerialSimulator(counter_circuit(limit=10_000, display=False))
        rate = sim.measure(2000)
        assert rate.rate_khz > 0

    def test_instruction_estimate_scales_with_design(self):
        small = instruction_estimate(counter_circuit())
        big = instruction_estimate(DESIGNS["vta"].build())
        assert big > 10 * small

    def test_estimate_counts_width(self):
        narrow = instruction_estimate(accumulator_circuit(width=16))
        wide = instruction_estimate(accumulator_circuit(width=128))
        assert wide > narrow

    def test_modeled_rate_decreases_with_size(self):
        small = modeled_serial_rate_khz(counter_circuit(), I7_9700K)
        big = modeled_serial_rate_khz(DESIGNS["noc"].build(), I7_9700K)
        assert small > big


class TestSarkar:
    def graph_for(self, circuit):
        return build_macrotask_graph(circuit)

    def test_initial_graph_one_task_per_op(self):
        circuit = counter_circuit()
        graph = self.graph_for(circuit)
        assert graph.num_tasks == len(circuit.ops)

    def test_coarsening_reduces_tasks(self):
        graph = self.graph_for(random_circuit(1, n_ops=60))
        before = graph.num_tasks
        coarsen(graph, min_task_cost=100.0)
        assert graph.num_tasks < before

    def test_coarsening_preserves_total_cost(self):
        graph = self.graph_for(random_circuit(2, n_ops=60))
        total = graph.total_cost()
        coarsen(graph, min_task_cost=100.0)
        assert graph.total_cost() == pytest.approx(total)

    def test_coarsened_graph_acyclic(self):
        graph = self.graph_for(random_circuit(3, n_ops=80))
        coarsen(graph, min_task_cost=150.0)
        graph._topo()  # raises on cycles

    def test_critical_path_monotone_under_merging(self):
        graph = self.graph_for(random_circuit(4, n_ops=60))
        before = graph.critical_path()
        coarsen(graph, min_task_cost=120.0)
        assert graph.critical_path() >= before

    def test_max_tasks_respected(self):
        graph = self.graph_for(random_circuit(5, n_ops=80))
        coarsen(graph, min_task_cost=1.0, max_tasks=6)
        assert graph.num_tasks <= 6

    @given(st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_merge_invariants_random(self, seed):
        graph = self.graph_for(random_circuit(seed + 500, n_ops=40))
        total = graph.total_cost()
        coarsen(graph, min_task_cost=80.0)
        assert graph.total_cost() == pytest.approx(total)
        ids = set(graph.task_ids())
        for t in ids:
            assert graph.preds[t] <= ids
            assert graph.succs[t] <= ids


class TestThreadModel:
    def make_graph(self, seed=7, n_ops=120):
        return macrotasks_for(random_circuit(seed, n_ops=n_ops),
                              min_task_cost=60.0)

    def test_assignment_covers_all_tasks(self):
        graph = self.make_graph()
        assignment = assign_static(graph, 4)
        assert set(assignment) == set(graph.task_ids())
        assert set(assignment.values()) <= set(range(4))

    def test_single_thread_equals_serial_work(self):
        graph = self.make_graph()
        res = simulate_multithreaded(graph, I7_9700K, 1, icache=False)
        expected = graph.total_cost() / I7_9700K.instr_rate
        assert res.makespan_s == pytest.approx(expected, rel=1e-6)
        assert res.barrier_s == 0.0

    def test_barrier_added_for_multithread(self):
        graph = self.make_graph()
        res = simulate_multithreaded(graph, I7_9700K, 4, icache=False)
        assert res.barrier_s > 0

    def test_small_design_does_not_scale(self):
        # Paper Fig. 6: small benchmarks slow down with threads.
        graph = macrotasks_for(counter_circuit(display=False),
                               min_task_cost=10.0)
        rates = scaling(graph, I7_9700K, [1, 2, 4])
        assert rates[1] > rates[2] > rates[4]

    def test_large_design_scales_then_plateaus(self):
        # A synthetic coarse-grained workload (64 independent 8k-instr
        # chains, ~512k instr/cycle): the paper's bottom-of-Fig.-5
        # regime where parallelism pays off.
        from repro.baseline.sarkar import MacroTaskGraph
        n = 64
        graph = MacroTaskGraph(
            costs=[8000.0] * n,
            preds=[set() for _ in range(n)],
            succs=[set() for _ in range(n)],
            alive=[True] * n,
        )
        rates = scaling(graph, EPYC_7V73X, [1, 2, 4, 8, 16, 32])
        assert rates[8] > 2 * rates[1]  # real speedup
        # and scaling saturates: 32 threads no better than the best.
        assert rates[32] <= max(rates.values()) + 1e-9

    def test_best_mt_rate(self):
        graph = self.make_graph()
        threads, rate = best_mt_rate_khz(graph, I7_9700K)
        assert threads in (2, 4, 8)
        assert rate > 0

    def test_efficiency_bounded(self):
        graph = self.make_graph()
        res = simulate_multithreaded(graph, I7_9700K, 4)
        assert 0.0 < res.efficiency <= 1.0

    def test_deterministic(self):
        graph = self.make_graph()
        a = simulate_multithreaded(graph, I7_9700K, 4)
        b = simulate_multithreaded(graph, I7_9700K, 4)
        assert a.cycle_time_s == b.cycle_time_s
