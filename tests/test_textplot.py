"""Tests for the ASCII figure renderer."""

from repro.textplot import bar_chart, line_plot


class TestLinePlot:
    def test_renders_all_series(self):
        out = line_plot({"a": [(1, 1), (2, 4)], "b": [(1, 2), (2, 1)]})
        assert "*" in out and "o" in out
        assert "a" in out and "b" in out

    def test_log_scale(self):
        out = line_plot({"a": [(1, 1), (2, 1000)]}, logy=True)
        assert "log10(y)" in out

    def test_title(self):
        out = line_plot({"a": [(0, 0), (1, 1)]}, title="hello")
        assert out.splitlines()[0] == "hello"

    def test_empty(self):
        assert "empty" in line_plot({})

    def test_constant_series_no_crash(self):
        line_plot({"flat": [(0, 5), (1, 5), (2, 5)]})


class TestBarChart:
    def test_scaling(self):
        out = bar_chart({"x": 1.0, "y": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_unit(self):
        assert "ms" in bar_chart({"x": 3.0}, unit="ms")

    def test_empty(self):
        assert "empty" in bar_chart({})
