"""Tests for the static binary verifier."""

import dataclasses

import pytest

from repro import isa
from repro.compiler import CompilerOptions, compile_circuit
from repro.compiler.verify import VerificationError, verify_program
from repro.isa.program import CoreBinary, ExceptionTable, MachineProgram
from repro.machine import MachineConfig, TINY

from repro.fuzz.generator import accumulator_circuit, counter_circuit


def compiled(circuit=None):
    return compile_circuit(circuit or counter_circuit(),
                           CompilerOptions(config=TINY)).program


class TestCleanBinaries:
    def test_compiled_programs_verify(self):
        verify_program(compiled(), TINY)
        verify_program(compiled(accumulator_circuit()), TINY)


def make_program(cores, vcpl=20, privileged=0, exceptions=None):
    return MachineProgram(
        name="t", grid=(2, 2), cores=cores, vcpl=vcpl,
        exceptions=exceptions or ExceptionTable(),
        privileged_core=privileged)


def binary(body, epilogue=0, sleep=None, vcpl=20, **kw):
    sleep = vcpl - len(body) - epilogue if sleep is None else sleep
    return CoreBinary(body=body, epilogue_length=epilogue,
                      sleep_length=sleep, **kw)


class TestViolations:
    def test_layout_mismatch(self):
        prog = make_program({0: binary([isa.Nop()], sleep=5)})
        with pytest.raises(VerificationError, match="layout"):
            verify_program(prog, MachineConfig(grid_x=2, grid_y=2))

    def test_virtual_register_rejected(self):
        prog = make_program({0: binary([isa.Alu("ADD", "v", 0, 0)])})
        with pytest.raises(VerificationError, match="virtual"):
            verify_program(prog, MachineConfig(grid_x=2, grid_y=2))

    def test_register_out_of_range(self):
        prog = make_program({0: binary([isa.Set(4000, 1)])})
        with pytest.raises(VerificationError, match="out of range"):
            verify_program(prog, MachineConfig(grid_x=2, grid_y=2))

    def test_send_to_missing_core(self):
        prog = make_program({0: binary([isa.Send(3, 1, 0)])})
        with pytest.raises(VerificationError, match="missing core"):
            verify_program(prog, MachineConfig(grid_x=2, grid_y=2))

    def test_receive_budget_mismatch(self):
        prog = make_program({
            0: binary([isa.Send(1, 1, 0)]),
            1: binary([isa.Nop()], epilogue=2),
        })
        with pytest.raises(VerificationError, match="receive slots"):
            verify_program(prog, MachineConfig(grid_x=2, grid_y=2))

    def test_unknown_exception(self):
        prog = make_program({0: binary([isa.Expect(0, 0, 9)])})
        with pytest.raises(VerificationError, match="exception id"):
            verify_program(prog, MachineConfig(grid_x=2, grid_y=2))

    def test_unconfigured_custom_function(self):
        prog = make_program(
            {0: binary([isa.Custom(1, 3, (0, 0, 0, 0))])})
        with pytest.raises(VerificationError, match="custom function"):
            verify_program(prog, MachineConfig(grid_x=2, grid_y=2))

    def test_privileged_on_wrong_core(self):
        prog = make_program({
            0: binary([isa.Nop()]),
            1: binary([isa.GlobalLoad(1, (0, 0, 0))]),
        })
        with pytest.raises(VerificationError, match="privileged"):
            verify_program(prog, MachineConfig(grid_x=2, grid_y=2))

    def test_imem_overflow(self):
        config = MachineConfig(grid_x=2, grid_y=2, imem_words=8)
        prog = make_program(
            {0: binary([isa.Nop()] * 16, vcpl=20, sleep=4)})
        with pytest.raises(VerificationError, match="imem"):
            verify_program(prog, config)

    def test_scratch_image_on_scratchpadless_core(self):
        config = MachineConfig(grid_x=2, grid_y=2, scratchpad_cores=1)
        prog = make_program({
            0: binary([isa.Nop()]),
            1: binary([isa.Nop()], scratch_init={0: 5}),
        })
        with pytest.raises(VerificationError, match="scratchpad-less"):
            verify_program(prog, config)
