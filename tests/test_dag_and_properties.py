"""Property-based tests on the netlist DAG utilities and cross-simulator
invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import CircuitBuilder, CircuitDag, NetlistInterpreter, sink_cones
from repro.netlist.ir import OpKind, topological_order

from repro.fuzz.generator import random_circuit


class TestCircuitDag:
    def make_dag(self, seed=0):
        return CircuitDag.from_circuit(random_circuit(seed))

    @given(st.integers(0, 25))
    @settings(max_examples=12, deadline=None)
    def test_levels_respect_edges(self, seed):
        dag = self.make_dag(seed)
        levels = dag.levels()
        for name, consumers in dag.consumers.items():
            for consumer in consumers:
                assert levels[consumer] >= levels[name] + 1

    @given(st.integers(0, 25))
    @settings(max_examples=12, deadline=None)
    def test_heights_respect_edges(self, seed):
        dag = self.make_dag(seed)
        heights = dag.height()
        for name, consumers in dag.consumers.items():
            for consumer in consumers:
                assert heights[name] >= heights[consumer] + 1

    @given(st.integers(0, 25))
    @settings(max_examples=12, deadline=None)
    def test_critical_path_equals_max_level(self, seed):
        dag = self.make_dag(seed)
        levels = dag.levels()
        assert dag.critical_path_length() == max(levels.values()) + 1

    def test_fanin_cone_contains_roots(self):
        dag = self.make_dag(3)
        for sink, cone in sink_cones(dag).items():
            assert sink in cone
            # cones are closed under data predecessors
            for member in cone:
                for arg in dag.producers[member].args:
                    if arg.name in dag.producers:
                        assert arg.name in cone

    def test_topological_order_is_valid(self):
        circuit = random_circuit(11)
        seen = set()
        for op in topological_order(circuit):
            for arg in op.args:
                producer_names = {o.result.name for o in circuit.ops}
                if arg.name in producer_names:
                    assert arg.name in seen
            seen.add(op.result.name)


class TestInterpreterInvariants:
    @given(st.integers(0, 40))
    @settings(max_examples=15, deadline=None)
    def test_values_stay_in_width(self, seed):
        circuit = random_circuit(seed + 1300, n_ops=15)
        interp = NetlistInterpreter(circuit)
        widths = circuit.wire_widths()
        for _ in range(5):
            interp.step()
            for name, value in interp.trace.items():
                if name in widths:
                    assert 0 <= value < (1 << widths[name]), name

    @given(st.integers(0, 40))
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, seed):
        a = NetlistInterpreter(random_circuit(seed + 1400)).run(10)
        b = NetlistInterpreter(random_circuit(seed + 1400)).run(10)
        assert a.displays == b.displays
        assert a.cycles == b.cycles

    @given(st.integers(0, 40))
    @settings(max_examples=10, deadline=None)
    def test_step_equals_run(self, seed):
        stepped = NetlistInterpreter(random_circuit(seed + 1500))
        for _ in range(6):
            stepped.step()
        ran = NetlistInterpreter(random_circuit(seed + 1500)).run(6)
        assert stepped.displays == ran.displays
