"""Tests for heterogeneous grids (paper SSA.7, future work): some cores
lack a scratchpad; the compiler places memory-using processes only on
scratchpad-equipped cores."""

import pytest

from repro.compiler import CompilerError, CompilerOptions, compile_circuit
from repro.fpga.resources import max_cores, max_cores_heterogeneous
from repro.machine import Machine, MachineConfig
from repro.netlist import NetlistInterpreter

from repro.fuzz.generator import counter_circuit, memory_circuit


def hetero_config(scratchpad_cores, grid=3):
    return MachineConfig(grid_x=grid, grid_y=grid,
                         scratchpad_cores=scratchpad_cores)


class TestResourceBound:
    def test_all_scratchpads_matches_homogeneous(self):
        assert max_cores_heterogeneous(1.0) == max_cores()

    def test_no_scratchpads_doubles_cores(self):
        assert max_cores_heterogeneous(0.0) == 2 * max_cores()

    def test_paper_example_more_cores(self):
        # Half the cores scratchpad-less: ~33% more cores fit.
        assert max_cores_heterogeneous(0.5) > 1.3 * max_cores()

    def test_validation(self):
        with pytest.raises(ValueError):
            max_cores_heterogeneous(1.5)


class TestPlacement:
    def test_memory_design_runs_on_hetero_grid(self):
        # memory_circuit has an SRAM-able memory only if mem2reg is off;
        # force it to stay a memory via a zero threshold.
        config = hetero_config(scratchpad_cores=2)
        golden = NetlistInterpreter(memory_circuit()).run(100)
        result = compile_circuit(
            memory_circuit(),
            CompilerOptions(config=config, mem2reg_max_words=0))
        # Scratchpad images only on equipped cores.
        for cid, binary in result.program.cores.items():
            if binary.scratch_init:
                assert cid < 2
        mres = Machine(result.program, config).run(100)
        assert mres.displays == golden.displays

    def test_pure_register_design_spreads_anywhere(self):
        config = hetero_config(scratchpad_cores=1)
        golden = NetlistInterpreter(counter_circuit()).run(100)
        result = compile_circuit(counter_circuit(),
                                 CompilerOptions(config=config))
        mres = Machine(result.program, config).run(100)
        assert mres.displays == golden.displays

    def test_too_few_scratchpad_cores_rejected(self):
        # Many independent memories cannot fit on one scratchpad core if
        # each needs its own process... they can co-locate, but zero
        # scratchpad cores must always fail (privileged core needs one).
        config = hetero_config(scratchpad_cores=0)
        with pytest.raises(CompilerError):
            compile_circuit(
                memory_circuit(),
                CompilerOptions(config=config, mem2reg_max_words=0))

    def test_machine_faults_on_misplaced_local_access(self):
        from repro import isa
        from repro.isa.program import CoreBinary, ExceptionTable, MachineProgram, SimulationFailure
        config = hetero_config(scratchpad_cores=1, grid=2)
        prog = MachineProgram(
            name="bad", grid=(2, 2),
            cores={
                0: CoreBinary(body=[isa.Nop()], epilogue_length=0,
                              sleep_length=10),
                3: CoreBinary(body=[isa.LocalLoad(1, 0, 0)],
                              epilogue_length=0, sleep_length=10,
                              reg_init={0: 0}),
            },
            vcpl=11, exceptions=ExceptionTable())
        machine = Machine(prog, config)
        with pytest.raises(SimulationFailure):
            machine.run(1)
