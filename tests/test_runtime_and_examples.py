"""Tests for the host runtime entry point and the example scripts."""

import runpy
import sys

import pytest

from repro import CompilerOptions, simulate_on_manticore
from repro.machine import TINY

from repro.fuzz.generator import counter_circuit


class TestSimulateOnManticore:
    def test_end_to_end_with_bootloader(self):
        run = simulate_on_manticore(
            counter_circuit(), options=CompilerOptions(config=TINY))
        assert run.displays[-1] == "9 is an odd number"
        assert run.binary_bytes > 0
        assert run.vcycles == 10

    def test_without_bootloader_roundtrip(self):
        run = simulate_on_manticore(
            counter_circuit(), options=CompilerOptions(config=TINY),
            through_bootloader=False)
        assert run.binary_bytes == 0
        assert run.vcycles == 10

    def test_rate_projection(self):
        run = simulate_on_manticore(
            counter_circuit(display=False),
            options=CompilerOptions(config=TINY))
        assert run.rate_khz(500.0) > 0
        assert run.rate_khz() > 0  # frequency-model default

    def test_max_vcycles_cap(self):
        run = simulate_on_manticore(
            counter_circuit(limit=10_000, display=False),
            max_vcycles=7, options=CompilerOptions(config=TINY))
        assert run.vcycles == 7
        assert not run.machine.finished


@pytest.mark.parametrize("script", [
    "quickstart", "verilog_flow", "global_memory",
])
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [f"{script}.py"])
    runpy.run_path(f"examples/{script}.py", run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()


def test_scaling_study_example(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["scaling_study.py", "jpeg", "1",
                                      "4"])
    runpy.run_path("examples/scaling_study.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "jpeg" in out and "VCPL" in out


def test_compare_simulators_example(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["compare_simulators.py", "jpeg"])
    runpy.run_path("examples/compare_simulators.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "Manticore" in out


class TestUartExample:
    def test_loopback_verilog(self):
        from repro import parse_verilog
        from repro.netlist import run_circuit
        with open("examples/uart_loopback.v") as f:
            circuit = parse_verilog(f.read())
        result = run_circuit(circuit, 3000)
        assert result.finished
        letters = [d.split()[1] for d in result.displays[:-1]]
        assert letters == list("ABCDEFGH")

    def test_loopback_compiles_and_matches(self):
        from repro import (CompilerOptions, Machine, MachineConfig,
                           parse_verilog)
        from repro.compiler import compile_circuit
        from repro.netlist import NetlistInterpreter
        source = open("examples/uart_loopback.v").read()
        config = MachineConfig(grid_x=4, grid_y=4)
        golden = NetlistInterpreter(parse_verilog(source)).run(3000)
        result = compile_circuit(parse_verilog(source),
                                 CompilerOptions(config=config))
        mres = Machine(result.program, config).run(3000)
        assert mres.displays == golden.displays
