"""Tests for the SS7.1 parallel-simulation models, the FPGA physical
model, and the Azure cost analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost import D2_V4, D16_V4, HB120, NP10S, cost_table, estimate, workday_flags
from repro.fpga import (
    CORE,
    U200,
    core_utilization_percent,
    frequency_mhz,
    grid_resources,
    max_cores,
    needs_guided_floorplan,
    sram_capacity_mib,
    table1_rows,
)
from repro.perfmodel import (
    EPYC_7V73X,
    FIG5_SIZES,
    I7_9700K,
    XEON_8272CL,
    scaling_curve,
    simulation_rate_khz,
    speedup_table,
)


class TestBspModel:
    def test_serial_rates_by_size(self):
        # Paper Fig. 5 regimes: 3.5k instr -> MHz-class serial rates;
        # 3.5M instr -> kHz-class.
        fine = simulation_rate_khz(3_500, 1, I7_9700K)
        coarse = simulation_rate_khz(3_500_000, 1, I7_9700K)
        assert fine > 1_000          # > 1 MHz
        assert coarse < 10           # < 10 kHz

    def test_fine_grain_collapses_at_two_threads(self):
        one = simulation_rate_khz(3_500, 1, I7_9700K)
        two = simulation_rate_khz(3_500, 2, I7_9700K)
        assert two < 0.6 * one       # the steep drop of Fig. 5 (top)

    def test_coarse_grain_benefits(self):
        curve = scaling_curve(I7_9700K, 3_500_000, model=1)
        assert curve.max_speedup > 4.0
        assert curve.best_threads == I7_9700K.cores

    def test_model2_slower_serial_but_higher_speedup(self):
        m1 = scaling_curve(I7_9700K, 350_000, model=1)
        m2 = scaling_curve(I7_9700K, 350_000, model=2)
        assert m2.rates_khz[0] < m1.rates_khz[0]   # i-cache pressure
        assert m2.max_speedup >= m1.max_speedup    # paper: "better since
        # its numerator (serial execution) suffers more from i-cache
        # misses"

    def test_superlinear_possible_with_icache(self):
        # Paper: "(i7, 3.5M) shows that cache effects can produce
        # super-linear improvement."
        curve = scaling_curve(I7_9700K, 3_500_000, model=2)
        assert curve.max_speedup > I7_9700K.cores

    def test_speedup_table_shape(self):
        rows = speedup_table([I7_9700K, EPYC_7V73X])
        assert len(rows) == 2 * len(FIG5_SIZES)
        for row in rows:
            assert row["model1_speedup"] >= 0.99
        # Larger designs offer more speedup (both platforms, model 1).
        for platform in ("i7-9700K", "EPYC 7V73X"):
            mine = [r["model1_speedup"] for r in rows
                    if r["platform"] == platform]
            assert mine == sorted(mine)

    def test_epyc_serial_lags_desktop(self):
        # Paper: "the EPYC processor lags behind the desktop processor".
        assert simulation_rate_khz(35_000, 1, EPYC_7V73X) < \
            simulation_rate_khz(35_000, 1, I7_9700K)

    @given(st.integers(1_000, 5_000_000), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_rate_positive_and_bounded(self, n, p):
        rate = simulation_rate_khz(n, p, XEON_8272CL, icache=True)
        ideal = XEON_8272CL.instr_rate / (n / p) / 1e3
        assert 0 < rate <= ideal + 1e-9


class TestFpga:
    def test_max_cores_is_398(self):
        assert max_cores() == 398  # paper SS7.2

    def test_core_utilization_under_a_quarter_percent(self):
        util = core_utilization_percent()
        # Paper: "Each core requires less than 0.021% of the U200's
        # resources" for the binding resource classes scaled by count;
        # every class stays well under 1%.
        assert all(v < 1.0 for v in util.values())
        assert util["uram"] == pytest.approx(0.208, abs=0.01)

    def test_grid_fits_u200(self):
        assert grid_resources(225).fits_in(U200)
        assert not grid_resources(500).fits_in(U200)

    def test_table1_frequencies(self):
        t15 = frequency_mhz(15, 15)
        assert t15.auto_mhz == pytest.approx(395.0)
        assert t15.guided_mhz == pytest.approx(475.0)
        t8 = frequency_mhz(8, 8)
        assert t8.auto_mhz == pytest.approx(500.0)

    def test_frequency_cliff_without_guidance(self):
        # Paper Table 1: auto floorplan collapses at 16x16.
        assert frequency_mhz(16, 16).auto_mhz == pytest.approx(180.0)
        assert frequency_mhz(16, 16).guided_mhz == pytest.approx(450.0)

    def test_guided_needed_beyond_single_region(self):
        assert not needs_guided_floorplan(10, 10)
        assert needs_guided_floorplan(15, 15)

    def test_sram_capacity_order(self):
        # Paper: ~14.4 MiB of URAM for 225 cores; ~18.45 MiB total SRAM.
        mib = sram_capacity_mib(225)
        assert 14.0 < mib < 19.0

    def test_table1_rows_complete(self):
        rows = table1_rows()
        assert [r["grid"] for r in rows] == \
            ["8x8", "10x10", "12x12", "15x15", "16x16"]


class TestCost:
    def test_vta_np10s_matches_paper(self):
        # Paper Table 6: vta at 278.1 kHz, 10B cycles -> 9.99 h, $21.45.
        est = estimate(NP10S, 278.1, 1e10)
        assert est.hours == pytest.approx(9.99, abs=0.01)
        assert est.dollars == pytest.approx(21.45)

    def test_serial_takes_most_of_a_week(self):
        # Paper: vta serial (32.4 kHz on D2) ~ 86 hours for 10B cycles.
        est = estimate(D2_V4, 32.4, 1e10)
        assert est.hours > 80
        assert workday_flags(est.hours)

    def test_billing_rounds_up(self):
        est = estimate(D16_V4, 1000.0, 3.6e9 + 1)  # just over 1 hour
        assert est.billed_hours == 2

    def test_minimum_one_hour(self):
        est = estimate(HB120, 1e6, 1e6)
        assert est.billed_hours == 1

    def test_cost_table_rows(self):
        rates = {"vta": {"D2 v4": 32.4, "NP10s": 278.1}}
        rows = cost_table(rates, 1e10)
        assert rows[0]["benchmark"] == "vta"
        assert rows[0]["NP10s $"] == pytest.approx(21.45)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            estimate(D2_V4, 0.0, 1e9)
