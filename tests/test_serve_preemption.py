"""Preemption is invisible and worker death is loud.

The two hard promises of the service:

* **bit-identical preemption + migration** — a job preempted mid-Vcycle
  (checking engines pause between events: pending writebacks and NoC
  messages in flight are part of the handoff snapshot) and resumed on a
  *different* worker finishes byte-equal to a run that was never
  interrupted.  Proven at the driver layer (the snapshot demonstrably
  lands mid-Vcycle) and end-to-end through the server (the job's worker
  history shows the migration);
* **fault isolation, never a hang** — in process mode a SIGKILLed
  worker surfaces as :class:`~repro.pool.PoolWorkerLost`; the job is
  retried from its last durable snapshot on a fresh process (and still
  finishes bit-identical) or, with the retry budget exhausted, fails
  with a diagnostic.  Every wait in this file carries a timeout, so a
  hang is a test failure, not a CI freeze.
"""

from __future__ import annotations

import asyncio
import functools
import os
import signal

import pytest

from repro.checkpoint import CheckpointStore, load_snapshot, \
    run_with_checkpoints
from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import Machine, MachineConfig
from repro.serve import SimulationServer, state_digest

CONFIG = MachineConfig(grid_x=8, grid_y=8)

#: Outer timeout on every server-path wait: generous on a loaded CI
#: box, but finite — the fault-injection cases must never hang.
WAIT_S = 300


def _budget(name: str) -> int:
    return max(64, DESIGNS[name].cycles + 300)


@functools.lru_cache(maxsize=None)
def _program(name: str):
    return compile_circuit(DESIGNS[name].build(),
                           CompilerOptions(config=CONFIG)).program


@functools.lru_cache(maxsize=None)
def _direct(name: str, engine: str):
    machine = Machine(_program(name), CONFIG, engine=engine)
    result = machine.run(_budget(name))
    return result, state_digest(machine)


# ---------------------------------------------------------------------------
# Driver layer: the preemption hook itself.
# ---------------------------------------------------------------------------


def test_driver_preempts_mid_vcycle_and_resumes_bit_identical(tmp_path):
    """Checking engine + preempt_grain: the handoff snapshot provably
    lands *inside* a Vcycle, and the continuation matches the
    uninterrupted run exactly."""
    name, engine = "mc", "strict"
    ref, ref_digest = _direct(name, engine)
    store = CheckpointStore(tmp_path, keep=5)

    polls = {"n": 0}

    def preempt() -> bool:
        polls["n"] += 1
        return polls["n"] >= 3   # a few event-chunks into some Vcycle

    first = run_with_checkpoints(
        _program(name), _budget(name), config=CONFIG, engine=engine,
        store=store, preempt=preempt, preempt_grain=4)
    assert first.preempted
    assert first.published, "preemption must publish a handoff snapshot"

    handoff = load_snapshot(first.published[-1])
    assert handoff.payload["state"]["event_pos"] > 0, \
        "handoff snapshot did not land mid-Vcycle"

    second = run_with_checkpoints(
        _program(name), _budget(name), config=CONFIG, engine=engine,
        store=store, resume=True)
    assert not second.preempted
    assert second.resumed_from == handoff.vcycle
    assert second.result.finished == ref.finished
    assert second.result.vcycles == ref.vcycles
    assert second.result.displays == ref.displays
    assert second.result.counters.as_dict() == ref.counters.as_dict()
    assert state_digest(second.machine) == ref_digest


def test_driver_preempt_on_trusted_engine_at_vcycle_boundary(tmp_path):
    """Once a compiled engine is past its verification window it
    executes Vcycles atomically: the hook still stops the run, at a
    boundary (``event_pos == 0``), and the resume is bit-identical.
    (During the verification window the engine event-steps like a
    checking engine, so the preemption is armed by Vcycle count.)"""
    name, engine = "mc", "fast"
    ref, ref_digest = _direct(name, engine)
    store = CheckpointStore(tmp_path, keep=5)

    seen = {"vcycles": 0}

    def on_vcycle(_machine) -> None:
        seen["vcycles"] += 1

    first = run_with_checkpoints(
        _program(name), _budget(name), config=CONFIG, engine=engine,
        store=store, on_vcycle=on_vcycle,
        preempt=lambda: seen["vcycles"] >= 5, preempt_grain=8)
    assert first.preempted
    assert load_snapshot(first.published[-1]) \
        .payload["state"]["event_pos"] == 0

    second = run_with_checkpoints(
        _program(name), _budget(name), config=CONFIG, engine=engine,
        store=store, resume=True)
    assert second.result.displays == ref.displays
    assert state_digest(second.machine) == ref_digest


# ---------------------------------------------------------------------------
# Server layer: preempt, migrate, resume.
# ---------------------------------------------------------------------------


async def _preempt_once_running(server, job, deadline_s: float) -> bool:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + deadline_s
    while loop.time() < deadline:
        if job.finished:
            return False
        if job.state == "running" and server.preempt(job.id):
            return True
        await asyncio.sleep(0.002)
    return False


def test_server_preempts_migrates_and_matches_uninterrupted_run():
    name, engine = "mc", "strict"
    ref, ref_digest = _direct(name, engine)

    async def go():
        async with SimulationServer(workers=2, mode="thread",
                                    config=CONFIG,
                                    preempt_grain=4) as server:
            job = await server.submit(design=name, engine=engine,
                                      cycles=_budget(name))
            delivered = await _preempt_once_running(server, job, WAIT_S)
            assert delivered, "job finished before it could be preempted"
            done = await server.wait(job.id, timeout=WAIT_S)
            return done

    job = asyncio.run(go())
    assert job.state == "done", job.error
    assert job.preemptions == 1
    # Migration: the resume ran on a different worker than the
    # preempted attempt.
    assert len(job.workers) == 2
    assert len(set(job.workers)) == 2
    # And the interruption is invisible in the result.
    assert job.result["displays"] == ref.displays
    assert job.result["finished"] == ref.finished
    assert job.result["vcycles"] == ref.vcycles
    assert job.result["state_sha256"] == ref_digest


def test_priority_submission_preempts_running_low_priority_job():
    """With every worker busy, a higher-priority submission preempts
    the weakest preemptible running job; both still finish correctly."""
    name, engine = "mc", "strict"
    _, ref_digest = _direct(name, engine)

    async def go():
        async with SimulationServer(workers=1, mode="thread",
                                    config=CONFIG,
                                    preempt_grain=4) as server:
            low = await server.submit(design=name, engine=engine,
                                      cycles=_budget(name), priority=1)
            # Wait until the low-priority job holds the only worker.
            loop = asyncio.get_running_loop()
            deadline = loop.time() + WAIT_S
            while low.state != "running" and loop.time() < deadline:
                await asyncio.sleep(0.002)
            assert low.state == "running"
            high = await server.submit(design=name, engine=engine,
                                       cycles=_budget(name), priority=5)
            low_done = await server.wait(low.id, timeout=WAIT_S)
            high_done = await server.wait(high.id, timeout=WAIT_S)
            return low_done, high_done

    low, high = asyncio.run(go())
    assert high.state == "done" and high.preemptions == 0
    assert low.state == "done"
    assert low.preemptions >= 1, \
        "the high-priority submission should have preempted the runner"
    assert low.result["state_sha256"] == ref_digest
    assert high.result["state_sha256"] == ref_digest


# ---------------------------------------------------------------------------
# Fault injection: SIGKILLed workers.
# ---------------------------------------------------------------------------


async def _kill_once_running(job, deadline_s: float) -> int | None:
    """SIGKILL the worker process executing ``job`` once it has a pid
    and is running; returns the killed pid (None if the job finished
    first)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + deadline_s
    while loop.time() < deadline:
        if job.finished:
            return None
        if job.state == "running" and job.pids:
            pid = job.pids[-1]
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                return None
            return pid
        await asyncio.sleep(0.002)
    return None


def test_sigkilled_worker_is_retried_and_result_still_bit_identical():
    name, engine = "bc", "fast"
    ref, ref_digest = _direct(name, engine)

    async def go():
        async with SimulationServer(workers=1, mode="process",
                                    config=CONFIG, chunk_vcycles=64,
                                    retries=1) as server:
            job = await server.submit(design=name, engine=engine,
                                      cycles=_budget(name))
            killed = await _kill_once_running(job, WAIT_S)
            assert killed is not None, \
                "job finished before the worker could be killed"
            done = await asyncio.wait_for(
                server.wait(job.id, timeout=WAIT_S), timeout=WAIT_S)
            return done, killed

    job, killed = asyncio.run(go())
    assert job.state == "done", job.error
    assert job.attempts == 1, "the lost worker must consume a retry"
    # The retry ran on a freshly spawned process.
    assert len(job.pids) == 2
    assert job.pids[0] == killed
    assert job.pids[1] != killed
    # And the crash is invisible in the result.
    assert job.result["displays"] == ref.displays
    assert job.result["finished"] == ref.finished
    assert job.result["state_sha256"] == ref_digest


def test_sigkilled_worker_with_no_retries_fails_loudly_never_hangs():
    name, engine = "bc", "fast"

    async def go():
        async with SimulationServer(workers=1, mode="process",
                                    config=CONFIG, chunk_vcycles=64,
                                    retries=0) as server:
            job = await server.submit(design=name, engine=engine,
                                      cycles=_budget(name))
            killed = await _kill_once_running(job, WAIT_S)
            assert killed is not None, \
                "job finished before the worker could be killed"
            done = await asyncio.wait_for(
                server.wait(job.id, timeout=WAIT_S), timeout=WAIT_S)
            return done

    job = asyncio.run(go())
    assert job.state == "failed"
    assert job.attempts == 1
    assert "worker lost" in job.error
    assert "retries exhausted" in job.error


def test_worker_lease_surfaces_death_immediately():
    """The pool-lease primitive itself: SIGKILL between calls raises
    PoolWorkerLost on the next call instead of blocking."""
    from repro.pool import PersistentPool, PoolWorkerLost

    pool = PersistentPool(1)
    try:
        lease = pool.lease()
        assert lease.run(len, [1, 2, 3]) == 3
        os.kill(lease.pid, signal.SIGKILL)
        with pytest.raises(PoolWorkerLost):
            lease.run(len, [1])
        lease._worker.proc.join(timeout=10)   # reap before checking
        assert not lease.alive
        pool.reclaim(lease)            # burying a dead lease is fine
        fresh = pool.lease()           # and the next lease is healthy
        assert fresh.pid != lease.pid
        assert fresh.run(len, [1]) == 1
        pool.reclaim(fresh)
    finally:
        pool.close()
