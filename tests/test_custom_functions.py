"""Unit tests for custom-function synthesis (MFFC fusion, SS6.2)."""

import pytest

from repro import isa
from repro.compiler.custom import (
    Candidate,
    _enumerate_candidates,
    _select_greedy,
    _select_milp,
    synthesize_custom_functions,
)
from repro.isa import FunctionalInterpreter
from repro.isa.program import ExceptionTable, Process, ProgramImage
from repro.isa.semantics import eval_custom


def make_process(body, reg_init):
    return Process(0, body=list(body), reg_init=dict(reg_init))


def image_of(proc):
    return ProgramImage("t", {0: proc}, ExceptionTable())


class TestEnumeration:
    def test_simple_chain_found(self):
        # r = (a & b) | c : a classic 3-input cone of two instructions.
        body = [
            isa.Alu("AND", "t1", "a", "b"),
            isa.Alu("OR", "r", "t1", "c"),
        ]
        cands = _enumerate_candidates(make_process(body, {}))
        assert any(c.savings == 1 and len(c.cone) == 2 for c in cands)

    def test_constants_are_free_inputs(self):
        # (a & 0xF) | b | (c & 0x3) | (d ^ 0x1) - the paper's SS4.2
        # example: six operations, four variables, three constants.
        consts = {"$c000f": 0xF, "$c0003": 0x3, "$c0001": 0x1}
        body = [
            isa.Alu("AND", "t1", "a", "$c000f"),
            isa.Alu("OR", "t2", "t1", "b"),
            isa.Alu("AND", "t3", "c", "$c0003"),
            isa.Alu("OR", "t4", "t2", "t3"),
            isa.Alu("XOR", "t5", "d", "$c0001"),
            isa.Alu("r", "r", "t4", "t5") if False else
            isa.Alu("OR", "r", "t4", "t5"),
        ]
        cands = _enumerate_candidates(make_process(body, consts))
        # The full six-instruction cone is 4-feasible (a, b, c, d).
        full = [c for c in cands if len(c.cone) == 6]
        assert full, "paper's example should fuse into one instruction"
        assert full[0].savings == 5
        assert set(full[0].inputs) == {"a", "b", "c", "d"}

    def test_five_variable_cone_rejected(self):
        body = [
            isa.Alu("AND", "t1", "a", "b"),
            isa.Alu("OR", "t2", "t1", "c"),
            isa.Alu("XOR", "t3", "t2", "d"),
            isa.Alu("OR", "r", "t3", "e"),
        ]
        cands = _enumerate_candidates(make_process(body, {}))
        assert not any(len(c.cone) == 4 for c in cands)

    def test_mffc_respects_external_use(self):
        # t1 is also consumed outside the cone -> the 2-cone is not
        # fanout-free.
        body = [
            isa.Alu("AND", "t1", "a", "b"),
            isa.Alu("OR", "r", "t1", "c"),
            isa.Alu("ADD", "other", "t1", "c"),   # external use of t1
        ]
        cands = _enumerate_candidates(make_process(body, {}))
        assert not any(len(c.cone) >= 2 for c in cands)


class TestSelection:
    def _cands(self):
        return [
            Candidate(root=0, cone=frozenset({0, 1}), inputs=("a", "b"),
                      config=111, savings=1),
            Candidate(root=2, cone=frozenset({1, 2}), inputs=("a", "c"),
                      config=222, savings=1),  # overlaps the first
            Candidate(root=5, cone=frozenset({4, 5, 6}),
                      inputs=("x", "y"), config=111, savings=2),
        ]

    def test_greedy_respects_overlap(self):
        chosen = _select_greedy(self._cands(), max_functions=32)
        cones = [c.cone for c in chosen]
        for i, a in enumerate(cones):
            for b in cones[i + 1:]:
                assert not (a & b)

    def test_greedy_respects_function_budget(self):
        cands = [
            Candidate(root=i, cone=frozenset({i}), inputs=("a",),
                      config=1000 + i, savings=1)
            for i in range(0, 40, 1)
        ]
        chosen = _select_greedy(cands, max_functions=4)
        assert len({c.config for c in chosen}) <= 4

    def test_milp_at_least_as_good_as_greedy(self):
        cands = self._cands()
        greedy = sum(c.savings for c in _select_greedy(cands, 32))
        milp = _select_milp(cands, 32)
        if milp is not None:
            assert sum(c.savings for c in milp) >= greedy


class TestEndToEnd:
    def test_fusion_preserves_semantics(self):
        consts = {"$c00f0": 0xF0, "$c0f0f": 0x0F0F}
        body = [
            isa.Alu("AND", "t1", "x", "$c00f0"),
            isa.Alu("OR", "t2", "t1", "y"),
            isa.Alu("XOR", "t3", "t2", "$c0f0f"),
            isa.Alu("ADD", "out", "t3", "x"),   # non-logic consumer
        ]
        init = dict(consts, x=0x1234, y=0x00FF)
        baseline = FunctionalInterpreter(
            image_of(make_process(body, init)))
        baseline.step()
        expected = baseline.peek_reg(0, "out")

        proc = make_process(body, init)
        image = image_of(proc)
        result = synthesize_custom_functions(image)
        assert result.per_process[0].fused_cones >= 1
        assert any(isinstance(i, isa.Custom) for i in proc.body)

        fused = FunctionalInterpreter(image)
        fused.step()
        assert fused.peek_reg(0, "out") == expected

    def test_function_deduplication(self):
        # The same (a & b) | c shape at two places -> one CFU entry.
        body = []
        for tag in ("p", "q"):
            body += [
                isa.Alu("AND", f"{tag}1", f"{tag}a", f"{tag}b"),
                isa.Alu("OR", f"{tag}r", f"{tag}1", f"{tag}c"),
                isa.Alu("ADD", f"{tag}out", f"{tag}r", f"{tag}a"),
            ]
        proc = make_process(body, {f"{t}{s}": 1 for t in "pq"
                                   for s in "abc"})
        image = image_of(proc)
        result = synthesize_custom_functions(image)
        stats = result.per_process[0]
        if stats.fused_cones == 2:
            assert stats.functions_used == 1

    def test_config_evaluates_to_cone_function(self):
        body = [
            isa.Alu("AND", "t1", "a", "b"),
            isa.Alu("XOR", "r", "t1", "c"),
            isa.Alu("ADD", "out", "r", "a"),
        ]
        proc = make_process(body, {"a": 0, "b": 0, "c": 0})
        synthesize_custom_functions(image_of(proc))
        customs = [i for i in proc.body if isinstance(i, isa.Custom)]
        assert customs
        config = proc.cfu[customs[0].index]
        env = {"a": 0xF0F0, "b": 0xCCCC, "c": 0xAAAA, "$c0000": 0}
        args = [env[r] for r in customs[0].rs]
        assert eval_custom(config, *args) == \
            (env["a"] & env["b"]) ^ env["c"]
