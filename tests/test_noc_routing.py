"""Property tests on the torus routing model (paper SS5.2)."""

from hypothesis import given, settings, strategies as st

from repro.machine import MachineConfig

grids = st.tuples(st.integers(1, 16), st.integers(1, 16))
coords = st.integers(0, 255)


def config_for(grid):
    return MachineConfig(grid_x=grid[0], grid_y=grid[1])


class TestDimensionOrderedRouting:
    @given(grids, coords, coords)
    @settings(max_examples=80, deadline=None)
    def test_route_reaches_destination(self, grid, a, b):
        config = config_for(grid)
        src = a % config.num_cores
        dst = b % config.num_cores
        x, y = config.coord(src)
        for kind, lx, ly in config.route(src, dst):
            if kind == "E":
                assert (lx, ly) == (x, y)
                x = (x + 1) % config.grid_x
            else:
                assert (lx, ly) == (x, y)
                y = (y + 1) % config.grid_y
        assert (x, y) == config.coord(dst)

    @given(grids, coords, coords)
    @settings(max_examples=80, deadline=None)
    def test_x_then_y(self, grid, a, b):
        config = config_for(grid)
        kinds = [k for k, _x, _y in config.route(a % config.num_cores,
                                                 b % config.num_cores)]
        # Dimension order: all eastward hops strictly precede southward.
        if "S" in kinds and "E" in kinds:
            first_south = kinds.index("S")
            last_east = max(i for i, k in enumerate(kinds) if k == "E")
            assert last_east < first_south

    @given(grids, coords, coords)
    @settings(max_examples=80, deadline=None)
    def test_no_repeated_links(self, grid, a, b):
        config = config_for(grid)
        route = config.route(a % config.num_cores, b % config.num_cores)
        assert len(route) == len(set(route))

    @given(grids, coords, coords)
    @settings(max_examples=80, deadline=None)
    def test_hop_count_is_wrapped_manhattan(self, grid, a, b):
        config = config_for(grid)
        src = a % config.num_cores
        dst = b % config.num_cores
        sx, sy = config.coord(src)
        dx, dy = config.coord(dst)
        expected = ((dx - sx) % config.grid_x) + \
            ((dy - sy) % config.grid_y)
        assert len(config.route(src, dst)) == expected

    @given(grids, coords)
    @settings(max_examples=40, deadline=None)
    def test_latency_floor(self, grid, a):
        config = config_for(grid)
        src = a % config.num_cores
        assert config.route_latency(src, src) == \
            config.noc_inject_latency + config.noc_eject_latency

    @given(grids, coords, coords)
    @settings(max_examples=40, deadline=None)
    def test_coord_roundtrip(self, grid, a, b):
        config = config_for(grid)
        core = a % config.num_cores
        x, y = config.coord(core)
        assert config.core_id(x, y) == core
        assert 0 <= x < config.grid_x and 0 <= y < config.grid_y
