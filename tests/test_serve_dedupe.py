"""Fingerprint-identical circuits compile once, whoever submits them.

The dedupe contract of the service: submissions are keyed through the
content-addressed compile cache, so two tenants submitting the same
circuit share one compile — concurrently (the second attaches to the
first's in-flight future, ``status="shared"``) or sequentially (the
second hits the disk artifact, ``status="hit"``).  Every claim is
asserted through ``CompileReport.cache`` statistics carried on the job,
and both tenants must still get correct, identical results.  Different
circuits must NOT dedupe against each other.
"""

from __future__ import annotations

import asyncio
import functools

from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import Machine, MachineConfig
from repro.serve import SimulationServer, state_digest

CONFIG = MachineConfig(grid_x=8, grid_y=8)


def _budget(name: str) -> int:
    return max(64, DESIGNS[name].cycles + 300)


@functools.lru_cache(maxsize=None)
def _direct_digest(name: str) -> str:
    program = compile_circuit(DESIGNS[name].build(),
                              CompilerOptions(config=CONFIG)).program
    machine = Machine(program, CONFIG, engine="fast")
    machine.run(_budget(name))
    return state_digest(machine)


def test_two_tenants_identical_circuits_compile_once():
    """Concurrent submissions of the same design from two tenants: one
    compile runs, the other attaches to it in flight, both correct."""

    async def go():
        async with SimulationServer(workers=2, mode="thread",
                                    config=CONFIG) as server:
            a = await server.submit(tenant="alice", design="mm",
                                    engine="fast")
            b = await server.submit(tenant="bob", design="mm",
                                    engine="fast")
            done_a = await server.wait(a.id, timeout=300)
            done_b = await server.wait(b.id, timeout=300)
            return done_a, done_b, server.metrics_snapshot()

    a, b, metrics = asyncio.run(go())
    assert a.state == "done" and b.state == "done"

    # Exactly one compile ran; per CompileReport.cache, one job was a
    # pipeline miss and the other shared the in-flight compile.
    assert metrics["compile"]["compiles"] == 1
    statuses = {a.cache["status"], b.cache["status"]}
    assert statuses == {"miss", "shared"}
    assert a.cache_key == b.cache_key
    miss = a if a.cache["status"] == "miss" else b
    assert miss.cache["misses"] == 1
    assert miss.cache["stores"] == 1

    # Both tenants got the correct (and identical) result.
    expected = _direct_digest("mm")
    assert a.result["state_sha256"] == expected
    assert b.result["state_sha256"] == expected
    assert a.result["displays"] == b.result["displays"]


def test_sequential_resubmission_hits_the_disk_artifact():
    async def go():
        async with SimulationServer(workers=1, mode="thread",
                                    config=CONFIG) as server:
            first = await server.wait(
                (await server.submit(tenant="alice", design="mm",
                                     engine="fast")).id, timeout=300)
            second = await server.wait(
                (await server.submit(tenant="bob", design="mm",
                                     engine="fast")).id, timeout=300)
            return first, second, server.metrics_snapshot()

    first, second, metrics = asyncio.run(go())
    assert first.cache["status"] == "miss"
    assert second.cache["status"] == "hit"
    assert second.cache["hits"] >= 1
    assert metrics["compile"]["compiles"] == 1
    assert metrics["compile"]["cache_hits"] == 1
    assert metrics["compile"]["hit_rate"] == 0.5
    expected = _direct_digest("mm")
    assert first.result["state_sha256"] == expected
    assert second.result["state_sha256"] == expected


def test_different_circuits_do_not_dedupe():
    async def go():
        async with SimulationServer(workers=1, mode="thread",
                                    config=CONFIG) as server:
            mm = await server.wait(
                (await server.submit(design="mm",
                                     engine="fast")).id, timeout=300)
            mc = await server.wait(
                (await server.submit(design="mc",
                                     engine="fast")).id, timeout=300)
            return mm, mc, server.metrics_snapshot()

    mm, mc, metrics = asyncio.run(go())
    assert mm.cache_key != mc.cache_key
    assert mm.cache["status"] == "miss"
    assert mc.cache["status"] == "miss"
    assert metrics["compile"]["compiles"] == 2
    assert metrics["compile"]["hit_rate"] == 0.0


def test_engine_choice_does_not_defeat_dedupe():
    """The cache key covers the circuit and compile options only — the
    execution engine is a run-time choice, so tenants on different
    engines still share one artifact."""

    async def go():
        async with SimulationServer(workers=2, mode="thread",
                                    config=CONFIG) as server:
            a = await server.submit(tenant="alice", design="mc",
                                    engine="strict")
            b = await server.submit(tenant="bob", design="mc",
                                    engine="codegen")
            done_a = await server.wait(a.id, timeout=300)
            done_b = await server.wait(b.id, timeout=300)
            return done_a, done_b, server.metrics_snapshot()

    a, b, metrics = asyncio.run(go())
    assert a.cache_key == b.cache_key
    assert metrics["compile"]["compiles"] == 1
    assert {a.cache["status"], b.cache["status"]} == {"miss", "shared"}
    # Engine-independent architecture: identical digests too.
    assert a.result["state_sha256"] == b.result["state_sha256"]
