"""Sharded execution must be bit-identical to single-process execution.

The shard protocol's whole contract (``repro.machine.shard``) is that
cutting the grid into K row bands and exchanging only the static
boundary Send payloads at the Vcycle barrier changes *nothing
observable*: registers, scratchpads, displays, perf counters, and cache
statistics all match a solo :class:`~repro.machine.grid.Machine`
exactly — including early mid-Vcycle ``$finish`` (the rollback-replay
path), serviced ``$display`` exceptions, trusted fast-engine Vcycles,
checkpoint interop in both directions, and the merged profiler view.
The in-process transport is the reference; the process transport must
match it bit for bit (one cross-check here, the fuzz oracle and CI
smoke drive it harder).
"""

from __future__ import annotations

import functools

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import Machine, MachineConfig, ShardedMachine
from repro.machine.shard import ShardMachine
from repro.obs.profiler import Profiler

CONFIG = MachineConfig(grid_x=8, grid_y=8)

ALL_DESIGNS = sorted(DESIGNS)


@functools.lru_cache(maxsize=None)
def _compiled(name: str):
    return compile_circuit(DESIGNS[name].build(),
                           CompilerOptions(config=CONFIG))


def _budget(name: str) -> int:
    return max(64, DESIGNS[name].cycles + 300)


@functools.lru_cache(maxsize=None)
def _solo(name: str):
    """Strict single-process reference run (the ground truth)."""
    machine = Machine(_compiled(name).program, CONFIG, engine="strict")
    result = machine.run(_budget(name))
    return machine, result


def _shard_cores(sharded: ShardedMachine) -> dict:
    cores = {}
    for shard in sharded._exec.shards:
        cores.update(shard.cores)
    return cores


def _assert_observably_equal(name, solo_m, solo_r, sharded, result):
    assert result.vcycles == solo_r.vcycles
    assert result.finished == solo_r.finished
    assert result.displays == solo_r.displays
    assert result.counters == solo_r.counters
    assert result.cache == solo_r.cache
    cores = _shard_cores(sharded)
    for cid, core in solo_m.cores.items():
        assert cores[cid].regs == core.regs, f"{name} core {cid} regs"
        assert cores[cid].scratch == core.scratch, \
            f"{name} core {cid} scratch"


@pytest.mark.parametrize("name", ALL_DESIGNS)
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_fast_bit_identical(name, shards):
    """All nine designs × K ∈ {2, 4}: the sharded fast engine (strict
    verification Vcycles, then trusted split traces, rollback on early
    $finish) equals the solo strict interpreter observably."""
    solo_m, solo_r = _solo(name)
    sharded = ShardedMachine(_compiled(name).program, CONFIG,
                             shards=shards, engine="fast")
    result = sharded.run(_budget(name))
    _assert_observably_equal(name, solo_m, solo_r, sharded, result)


@pytest.mark.parametrize("name", ["bc", "noc"])
def test_sharded_strict_bit_identical(name):
    """The strict sharded interpreter (no fast path at all) matches
    too — isolates the two-phase protocol from the trace engine."""
    solo_m, solo_r = _solo(name)
    sharded = ShardedMachine(_compiled(name).program, CONFIG,
                             shards=3, engine="strict")
    result = sharded.run(_budget(name))
    _assert_observably_equal(name, solo_m, solo_r, sharded, result)


def test_early_finish_rolls_back_on_every_shard():
    """Designs that $finish mid-Vcycle exercise the optimistic-body
    rollback: every shard must restore and replay the truncated strict
    loop, not just the privileged one."""
    name = "noc"
    solo_m, solo_r = _solo(name)
    assert solo_r.finished, "fixture must actually finish early"
    sharded = ShardedMachine(_compiled(name).program, CONFIG,
                             shards=4, engine="fast")
    result = sharded.run(_budget(name))
    assert result.finished
    _assert_observably_equal(name, solo_m, solo_r, sharded, result)


def test_serviced_displays_route_to_coordinator():
    """$display services run on the privileged shard's worker; the
    coordinator's merged result must carry them in order."""
    name = "bc"
    _solo_m, solo_r = _solo(name)
    assert solo_r.counters.exceptions > 0, "fixture must service displays"
    sharded = ShardedMachine(_compiled(name).program, CONFIG,
                             shards=2, engine="fast")
    result = sharded.run(_budget(name))
    assert result.displays == solo_r.displays
    assert result.counters.exceptions == solo_r.counters.exceptions


def test_trusted_engine_actually_engages():
    """Guards against the sweep passing vacuously in strict mode: at
    least one shard must hand Vcycles to its trusted split trace."""
    sharded = ShardedMachine(_compiled("mc").program, CONFIG,
                             shards=4, engine="fast")
    budget = _budget("mc")
    trusted = 0
    while not sharded.finished and sharded.counters.vcycles < budget:
        trusted += sum(1 for m in sharded._exec.shards if m._trusted)
        sharded.step_vcycle()
    assert trusted > 0
    solo_m, solo_r = _solo("mc")
    result = sharded._collect_result()
    _assert_observably_equal("mc", solo_m, solo_r, sharded, result)


def test_process_transport_matches_local():
    """The pipe transport (persistent workers, encoded payloads) must
    equal the in-process reference bit for bit."""
    program = _compiled("noc").program
    budget = _budget("noc")
    local = ShardedMachine(program, CONFIG, shards=4, engine="fast")
    ref = local.run(budget)
    with ShardedMachine(program, CONFIG, shards=4, engine="fast",
                        transport="process") as procm:
        got = procm.run(budget)
        state = procm.checkpoint_state()
    assert got.counters == ref.counters
    assert got.displays == ref.displays
    assert got.finished == ref.finished
    assert state == local.checkpoint_state()


class TestCheckpointInterop:
    """Sharded snapshots are standard single-process images: solo and
    sharded runs resume each other's checkpoints bit-identically."""

    def test_sharded_to_solo_and_back(self):
        program = _compiled("noc").program
        budget = _budget("noc")
        solo_m, solo_r = _solo("noc")

        first = ShardedMachine(program, CONFIG, shards=4, engine="fast")
        first.run(20)
        snap = first.checkpoint_state()

        resumed_solo = Machine(program, CONFIG, engine="fast")
        resumed_solo.load_checkpoint_state(snap)
        r1 = resumed_solo.run(budget - 20)
        assert r1.counters == solo_r.counters
        assert r1.displays == solo_r.displays
        for cid, core in solo_m.cores.items():
            assert resumed_solo.cores[cid].regs == core.regs

        resumed_sharded = ShardedMachine(program, CONFIG, shards=2,
                                         engine="fast")
        resumed_sharded.load_checkpoint_state(snap)
        r2 = resumed_sharded.run(budget - 20)
        assert r2.counters == solo_r.counters
        assert r2.displays == solo_r.displays

    def test_solo_to_sharded(self):
        program = _compiled("mm").program
        budget = _budget("mm")
        solo_m, solo_r = _solo("mm")
        m = Machine(program, CONFIG, engine="fast")
        m.run(25)
        snap = m.checkpoint_state()
        sharded = ShardedMachine(program, CONFIG, shards=4, engine="fast")
        sharded.load_checkpoint_state(snap)
        result = sharded.run(budget - 25)
        _assert_observably_equal("mm", solo_m, solo_r, sharded, result)

    def test_mid_vcycle_snapshot_refused(self):
        program = _compiled("mc").program
        m = Machine(program, CONFIG, engine="strict")
        m.run(3)
        m.step_events(5)  # pause mid-Vcycle
        snap = m.checkpoint_state()
        sharded = ShardedMachine(program, CONFIG, shards=2)
        with pytest.raises(ValueError, match="mid-Vcycle"):
            sharded.load_checkpoint_state(snap)


def test_profiler_merge_equals_solo_profile():
    """Per-shard profilers merged across the barrier must equal the
    single-process profile state byte for byte."""
    program = _compiled("noc").program
    budget = _budget("noc")
    p_solo = Profiler()
    Machine(program, CONFIG, engine="fast", profiler=p_solo).run(budget)
    p_shard = Profiler()
    sharded = ShardedMachine(program, CONFIG, shards=4, engine="fast",
                             profiler=p_shard)
    sharded.run(budget)
    assert p_shard.state_dict() == p_solo.state_dict()


def test_codegen_cannot_shard():
    with pytest.raises(ValueError, match="codegen"):
        ShardedMachine(_compiled("mc").program, CONFIG, shards=2,
                       engine="codegen")


def test_shard_count_validation():
    program = _compiled("mc").program
    with pytest.raises(ValueError, match="shards"):
        ShardedMachine(program, CONFIG, shards=0)
    with pytest.raises(ValueError, match="shards"):
        ShardedMachine(program, CONFIG, shards=9)  # > grid_y
    with pytest.raises(ValueError, match="transport"):
        ShardedMachine(program, CONFIG, shards=2, transport="carrier")
