"""Internal-consistency invariants of the observability subsystem.

Perturbation tests (``test_obs_perturbation.py``) prove observing
changes nothing; this file proves what *was* observed is right:

* per-core counters sum to the machine-wide
  :class:`~repro.machine.grid.PerfCounters`;
* per-link hop counts sum to the hop total, and the switch heatmap is
  a lossless regrouping of the link table;
* per-Vcycle samples sum to the run totals (exactly, even after
  pairwise compaction bounds the sample list);
* all three engines produce *identical* profiler data, not just
  identical architectural results;
* span trees nest without overlap;
* the JSON export validates against ``docs/profile.schema.json`` and
  the fuzz harness's ``machine-fast-profiled`` oracle runs clean.
"""

from __future__ import annotations

import functools
import json
import pathlib

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import Machine, MachineConfig
from repro.obs import (
    Profiler,
    Tracer,
    build_profile,
    chrome_trace,
    metrics_dict,
    profile_circuit,
    prometheus_textfile,
    validate_profile,
)
from repro.obs.report import render_report

CONFIG = MachineConfig(grid_x=8, grid_y=8)

SCHEMA_PATH = (pathlib.Path(__file__).resolve().parent.parent
               / "docs" / "profile.schema.json")

#: Designs exercised per-engine below; mc finishes quickly and touches
#: every observable (cache, exceptions, messages, $finish mid-Vcycle).
PROFILED_DESIGNS = ("mc", "mm")


@functools.lru_cache(maxsize=None)
def _compiled(name: str):
    return compile_circuit(DESIGNS[name].build(),
                           CompilerOptions(config=CONFIG))


@functools.lru_cache(maxsize=None)
def _profiled(name: str, engine: str):
    profiler = Profiler()
    machine = Machine(_compiled(name).program, CONFIG, engine=engine,
                      profiler=profiler)
    result = machine.run(max(64, DESIGNS[name].cycles + 300))
    return machine, result, profiler


# ---------------------------------------------------------------------------
# Counter conservation.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["strict", "permissive", "fast"])
@pytest.mark.parametrize("name", PROFILED_DESIGNS)
def test_core_counters_sum_to_machine_counters(name, engine):
    _, result, profiler = _profiled(name, engine)
    totals = profiler.totals()
    counters = result.counters
    assert totals["instructions"] == counters.instructions
    assert totals["sends"] == counters.messages
    assert totals["exceptions"] == counters.exceptions
    # Every global stall is attributed to exactly one core's privileged
    # access or exception - nothing double-counted, nothing orphaned.
    assert totals["stall_caused"] == counters.stall_cycles
    assert profiler.stall_causes.get("total", 0) == counters.stall_cycles


@pytest.mark.parametrize("engine", ["strict", "permissive", "fast"])
@pytest.mark.parametrize("name", PROFILED_DESIGNS)
def test_link_hops_sum_to_total(name, engine):
    _, _, profiler = _profiled(name, engine)
    assert sum(profiler.links.values()) == profiler.total_hops
    # The switch heatmap is a regrouping of the same data, not a
    # recount.
    assert sum(profiler.switch_utilization().values()) \
        == profiler.total_hops
    for (kind, x, y) in profiler.links:
        assert kind in ("E", "S")
        assert 0 <= x < CONFIG.grid_x and 0 <= y < CONFIG.grid_y


@pytest.mark.parametrize("engine", ["strict", "permissive", "fast"])
@pytest.mark.parametrize("name", PROFILED_DESIGNS)
def test_vcycle_samples_sum_to_run_totals(name, engine):
    _, result, profiler = _profiled(name, engine)
    counters = result.counters
    assert sum(s.width for s in profiler.samples) == result.vcycles
    assert sum(s.compute_cycles for s in profiler.samples) \
        == counters.compute_cycles
    assert sum(s.stall_cycles for s in profiler.samples) \
        == counters.stall_cycles
    assert sum(s.instructions for s in profiler.samples) \
        == counters.instructions
    assert sum(s.messages for s in profiler.samples) == counters.messages
    assert sum(s.exceptions for s in profiler.samples) \
        == counters.exceptions


@pytest.mark.parametrize("name", PROFILED_DESIGNS)
def test_engines_agree_on_profiler_data(name):
    """Not just identical results: identical *observations*.  The fast
    engine's bulk-merged static counts must equal the strict engine's
    per-event bookkeeping, core by core and link by link."""
    _, _, strict = _profiled(name, "strict")
    for engine in ("permissive", "fast"):
        _, _, other = _profiled(name, engine)
        assert other.cores == strict.cores, engine
        assert other.links == strict.links, engine
        assert other.total_hops == strict.total_hops, engine
        assert other.stall_causes == strict.stall_causes, engine
        assert other.cache_latency == strict.cache_latency, engine


def test_cache_histograms_count_every_access():
    _, result, profiler = _profiled("mc", "strict")
    recorded = sum(count for hist in profiler.cache_latency.values()
                   for count in hist.values())
    assert recorded == result.cache.accesses
    hits = sum(count for (op, outcome), hist
               in profiler.cache_latency.items() if outcome == "hit"
               for count in hist.values())
    assert hits == result.cache.hits


def test_sample_compaction_is_lossless():
    """Pairwise compaction halves resolution but conserves totals."""
    profiler = Profiler(sample_cap=8)
    for i in range(100):
        profiler.end_vcycle(i, compute=10, stall=i % 3, instructions=7,
                            messages=2, exceptions=0)
    assert len(profiler.samples) <= 2 * profiler.sample_cap
    assert sum(s.width for s in profiler.samples) == 100
    assert sum(s.compute_cycles for s in profiler.samples) == 1000
    assert sum(s.instructions for s in profiler.samples) == 700
    assert sum(s.messages for s in profiler.samples) == 200
    assert sum(s.stall_cycles for s in profiler.samples) \
        == sum(i % 3 for i in range(100))
    starts = [s.start for s in profiler.samples]
    assert starts == sorted(starts)


# ---------------------------------------------------------------------------
# Span trees.
# ---------------------------------------------------------------------------

@functools.lru_cache(maxsize=None)
def _profiled_run():
    return profile_circuit(DESIGNS["mc"].build(), engine="fast",
                           options=CompilerOptions(config=CONFIG),
                           config=CONFIG)


def test_span_tree_nests_without_overlap():
    tracer = _profiled_run().tracer
    spans = tracer.spans
    assert spans, "compile + run should produce spans"
    assert {"compile", "machine.run"} <= {s.name for s in spans}
    for s in spans:
        assert s.end is not None and s.end >= s.start
        if s.parent >= 0:
            parent = spans[s.parent]
            assert s.depth == parent.depth + 1
            assert parent.start <= s.start
            assert s.end <= parent.end
        else:
            assert s.depth == 0
    # Siblings are disjoint in time (spans come from one thread's
    # stack, so a sibling starts only after the previous one closed).
    by_parent: dict[int, list] = {}
    for s in spans:
        by_parent.setdefault(s.parent, []).append(s)
    for siblings in by_parent.values():
        for earlier, later in zip(siblings, siblings[1:]):
            assert earlier.end <= later.start


def test_compile_phases_are_spanned():
    names = {s.name for s in _profiled_run().tracer.spans}
    for phase in ("compile.opt", "compile.lower", "compile.parallelize",
                  "compile.custom", "compile.schedule",
                  "compile.regalloc"):
        assert phase in names, phase


# ---------------------------------------------------------------------------
# Exports.
# ---------------------------------------------------------------------------

def test_profile_export_matches_checked_in_schema():
    schema = json.loads(SCHEMA_PATH.read_text())
    profile = _profiled_run().profile
    # Round-trip through JSON so what we validate is what a consumer
    # parses, not Python-only types.
    profile = json.loads(json.dumps(profile))
    assert validate_profile(profile, schema) == []


def test_schema_validator_rejects_broken_profiles():
    schema = json.loads(SCHEMA_PATH.read_text())
    profile = json.loads(json.dumps(_profiled_run().profile))
    del profile["result"]
    assert any("result" in e for e in validate_profile(profile, schema))
    profile = json.loads(json.dumps(_profiled_run().profile))
    profile["result"]["vcycles"] = -1
    assert validate_profile(profile, schema)
    profile["result"]["vcycles"] = "lots"
    assert validate_profile(profile, schema)


def test_chrome_trace_shape():
    trace = _profiled_run().trace_json
    trace = json.loads(json.dumps(trace))
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert events[0]["ph"] == "M"
    complete = [e for e in events if e["ph"] == "X"]
    assert complete
    for event in complete:
        assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(event)
        assert event["ts"] >= 0 and event["dur"] >= 0


def test_metrics_dict_is_flat_and_numeric():
    metrics = _profiled_run().metrics
    assert metrics["result.vcycles"] > 0
    assert metrics["noc.total_hops"] > 0
    for key, value in metrics.items():
        assert isinstance(key, str)
        assert isinstance(value, (int, float))
    assert any("." in key for key in metrics)


def test_prometheus_textfile_format():
    text = _profiled_run().prometheus
    assert text.endswith("\n")
    sample_lines = [l for l in text.splitlines()
                    if l and not l.startswith("#")]
    assert sample_lines
    for line in sample_lines:
        name = line.split("{", 1)[0]
        assert name.startswith("repro_")
        value = line.rsplit(" ", 1)[1]
        float(value)  # must parse
    assert 'design="mc"' in text and 'engine="fast"' in text


def test_report_renders_for_zero_cycle_run():
    """The [fix] satellite: reports for runs that never executed must
    say so explicitly, with no division by zero anywhere."""
    profiler = Profiler()
    tracer = Tracer()
    machine = Machine(_compiled("mc").program, CONFIG, engine="fast",
                      profiler=profiler)
    result = machine.run(0)
    from repro.obs.report import ProfiledRun
    run = ProfiledRun(name="mc", engine="fast",
                      compile_result=_compiled("mc"), machine=machine,
                      result=result, profiler=profiler, tracer=tracer,
                      frequency_mhz=CONFIG.frequency_mhz)
    profile = build_profile(run)
    assert profile["result"]["simulation_rate_khz"] == 0.0
    assert profile["result"]["status"] \
        == "did not run (zero Vcycles executed)"
    text = render_report(profile)
    assert "did not run" in text
    assert "n/a (no machine cycles executed)" in text
    # Exports stay well-formed too.
    schema = json.loads(SCHEMA_PATH.read_text())
    assert validate_profile(json.loads(json.dumps(profile)), schema) == []
    prometheus_textfile(profile)
    metrics_dict(profile)
    chrome_trace(tracer)


def test_report_renders_for_all_engines():
    for engine in ("strict", "permissive", "fast"):
        machine, result, profiler = _profiled("mc", engine)
        from repro.obs.report import ProfiledRun
        run = ProfiledRun(name="mc", engine=engine,
                          compile_result=_compiled("mc"), machine=machine,
                          result=result, profiler=profiler,
                          tracer=Tracer(),
                          frequency_mhz=CONFIG.frequency_mhz)
        text = run.render()
        assert "finished ($finish reached)" in text
        assert "VCPL attribution" in text
        assert "NoC link utilization" in text


# ---------------------------------------------------------------------------
# Fuzz-matrix hook.
# ---------------------------------------------------------------------------

def test_profiled_oracle_in_matrices():
    from repro.fuzz.oracle import MATRICES, ORACLES
    spec = ORACLES["machine-fast-profiled"]
    assert spec.profiled and spec.engine == "fast"
    assert "profiled" in spec.describe()
    assert "machine-fast-profiled" in MATRICES["engines"]
    assert "machine-fast-profiled" in MATRICES["full"]


def test_profiled_oracle_runs_clean():
    """One profiled variant per fuzz seed: generated circuits (not just
    the curated designs) must satisfy the observation contract."""
    from repro.fuzz.oracle import fuzz_seed
    report = fuzz_seed(7, matrix="machine-fast,machine-fast-profiled")
    assert report.ok, [d.describe() for d in report.divergences]


def test_profile_invariant_checker_detects_violations():
    from repro.fuzz.oracle import check_profile_invariants
    _, result, profiler = _profiled("mc", "fast")
    assert check_profile_invariants(profiler, result) is None
    broken = Profiler()
    broken.cores.update({cid: c for cid, c in profiler.cores.items()})
    broken.links.update(profiler.links)
    broken.total_hops = profiler.total_hops + 1  # corrupt one invariant
    broken.samples = list(profiler.samples)
    broken.stall_causes.update(profiler.stall_causes)
    problem = check_profile_invariants(broken, result)
    assert problem is not None and "link hops" in problem
