"""Verilog frontend tests, including the paper's Fig. 13 counter."""

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.machine import Machine, TINY
from repro.netlist import NetlistInterpreter, run_circuit
from repro.netlist.verilog import VerilogError, parse_literal, parse_verilog, tokenize

FIG13_COUNTER = """
// The paper's Fig. 13 example: a counter that reports parity and stops.
module counter();
  reg [31:0] counter = 0;
  always @(posedge clock) begin
    counter <= counter + 1;
    if (counter[0] == 1'b0)
      $display("%d is an even number", counter);
    else
      $display("%d is an odd number", counter);
    if (counter == 20)
      $finish;
  end
endmodule
"""


class TestLexer:
    def test_literals(self):
        assert parse_literal("8'hFF") == (255, 8)
        assert parse_literal("4'b1010") == (10, 4)
        assert parse_literal("16'd42") == (42, 16)
        assert parse_literal("123") == (123, None)
        assert parse_literal("8'hx_F") == (15, 8)  # x -> 0

    def test_comments_stripped(self):
        toks = tokenize("a // comment\n b /* block\n comment */ c")
        assert [t.text for t in toks[:-1]] == ["a", "b", "c"]


class TestFig13Counter:
    def test_simulation(self):
        circuit = parse_verilog(FIG13_COUNTER)
        result = run_circuit(circuit, 1000)
        assert result.finished
        assert result.cycles == 21
        assert result.displays[0] == "0 is an even number"
        assert result.displays[1] == "1 is an odd number"
        assert result.displays[-1] == "20 is an even number"

    def test_compiles_to_manticore(self):
        circuit = parse_verilog(FIG13_COUNTER)
        golden = NetlistInterpreter(circuit).run(1000)
        res = compile_circuit(circuit, CompilerOptions(config=TINY))
        mres = Machine(res.program, TINY).run(1000)
        assert mres.displays == golden.displays
        assert mres.vcycles == golden.cycles


def run_verilog(source, cycles=100):
    return run_circuit(parse_verilog(source), cycles)


class TestLanguageFeatures:
    def test_assign_wires(self):
        result = run_verilog("""
        module t();
          reg [7:0] x = 3;
          wire [7:0] y;
          wire [7:0] z;
          assign y = x * 2;
          assign z = y + 1;
          always @(posedge clk) begin
            $display("%d", z);
            $finish;
          end
        endmodule
        """)
        assert result.displays == ["7"]

    def test_parameters(self):
        result = run_verilog("""
        module t();
          parameter WIDTH = 8;
          parameter LIMIT = 5;
          reg [WIDTH-1:0] c = 0;
          always @(posedge clk) begin
            c <= c + 1;
            if (c == LIMIT) $finish;
          end
        endmodule
        """)
        assert result.cycles == 6

    def test_if_else_priority(self):
        result = run_verilog("""
        module t();
          reg [3:0] c = 0;
          reg [7:0] out = 0;
          always @(posedge clk) begin
            c <= c + 1;
            out <= 1;
            if (c == 2) out <= 2;
            if (c == 2) begin end else out <= out;
            if (c == 3) $display("%d", out);
            if (c == 3) $finish;
          end
        endmodule
        """)
        # At cycle with c==2, out <= 2 wins (last assignment in branch).
        assert result.displays == ["2"]

    def test_memory(self):
        result = run_verilog("""
        module t();
          reg [3:0] c = 0;
          reg [15:0] mem [0:15];
          always @(posedge clk) begin
            c <= c + 1;
            mem[c] <= c * 3;
            if (c == 10) $display("%d %d", mem[0], mem[5]);
            if (c == 10) $finish;
          end
        endmodule
        """)
        assert result.displays == ["0 15"]

    def test_operators(self):
        result = run_verilog("""
        module t();
          reg [7:0] a = 12;
          reg [7:0] b = 10;
          wire [7:0] sum;
          wire [7:0] sh;
          wire cmp;
          wire [15:0] cc;
          assign sum = a + b;
          assign sh = a << 2;
          assign cmp = a > b;
          assign cc = {a, b};
          always @(posedge clk) begin
            $display("%d %d %d %d", sum, sh, cmp, cc);
            $finish;
          end
        endmodule
        """)
        assert result.displays == [f"{22} {48} {1} {12 * 256 + 10}"]

    def test_ternary_and_reduction(self):
        result = run_verilog("""
        module t();
          reg [3:0] x = 4'b1011;
          wire [7:0] y;
          assign y = (|x) ? 8'd5 : 8'd9;
          always @(posedge clk) begin
            $display("%d %d %d", y, &x, ^x);
            $finish;
          end
        endmodule
        """)
        assert result.displays == ["5 0 1"]

    def test_replication_and_part_select(self):
        result = run_verilog("""
        module t();
          reg [3:0] x = 4'b1010;
          wire [7:0] r;
          wire [1:0] p;
          assign r = {2{x}};
          assign p = x[3:2];
          always @(posedge clk) begin
            $display("%b %b", r, p);
            $finish;
          end
        endmodule
        """)
        assert result.displays == ["10101010 10"]

    def test_dynamic_bit_select(self):
        result = run_verilog("""
        module t();
          reg [2:0] i = 0;
          reg [7:0] x = 8'b10110010;
          always @(posedge clk) begin
            i <= i + 1;
            $display("%d", x[i]);
            if (i == 7) $finish;
          end
        endmodule
        """)
        assert "".join(result.displays) == "01001101"  # LSB first


class TestErrors:
    def test_ports_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog("module t(input clk); endmodule")

    def test_two_clock_domains_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog("""
            module t();
              reg a = 0;
              reg b = 0;
              always @(posedge clk) a <= 1;
              always @(posedge other_clk) b <= 1;
            endmodule
            """)

    def test_unknown_identifier(self):
        with pytest.raises(VerilogError):
            parse_verilog("""
            module t();
              wire [7:0] y;
              assign y = nonexistent + 1;
              always @(posedge clk) $finish;
            endmodule
            """)

    def test_combinational_cycle(self):
        with pytest.raises(VerilogError):
            parse_verilog("""
            module t();
              wire [7:0] a;
              wire [7:0] b;
              assign a = b + 1;
              assign b = a + 1;
              always @(posedge clk) $finish;
            endmodule
            """)

    def test_initial_store_to_wire_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog("""
            module t();
              wire [3:0] a;
              assign a = 2;
              initial a = 1;
              always @(posedge clk) $finish;
            endmodule
            """)

    def test_nonconstant_initial_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog("""
            module t();
              reg [3:0] a = 0;
              reg [3:0] b = 0;
              initial a = b + 1;
              always @(posedge clk) $finish;
            endmodule
            """)


HIER_SRC = """
module adder(input [7:0] a, input [7:0] b, output [8:0] sum);
  assign sum = a + b;
endmodule

module accum(input clk, input [7:0] inc, output [15:0] total);
  reg [15:0] acc = 0;
  always @(posedge clk) acc <= acc + inc;
  assign total = acc;
endmodule

module top();
  reg [7:0] x = 3;
  wire [8:0] s;
  wire [15:0] t;
  adder u_add (.a(x), .b(8'd10), .sum(s));
  accum u_acc (.clk(clk), .inc(s[7:0]), .total(t));
  always @(posedge clk) begin
    x <= x + 1;
    if (x == 6) $display("s=%d t=%d", s, t);
    if (x == 6) $finish;
  end
endmodule
"""


class TestHierarchy:
    def test_flattened_semantics(self):
        result = run_circuit(parse_verilog(HIER_SRC), 100)
        # x = 6 -> s = 16; acc accumulated 13 + 14 + 15 = 42.
        assert result.displays == ["s=16 t=42"]

    def test_top_inference(self):
        circuit = parse_verilog(HIER_SRC)
        assert circuit.name == "top"

    def test_explicit_top(self):
        # adder has ports, so electing it as top must fail cleanly.
        with pytest.raises(VerilogError):
            parse_verilog(HIER_SRC, top="adder")

    def test_nested_hierarchy(self):
        src = """
        module leaf(input [3:0] v, output [3:0] w);
          assign w = v + 1;
        endmodule
        module mid(input [3:0] v, output [3:0] w);
          wire [3:0] inner;
          leaf l1 (.v(v), .w(inner));
          leaf l2 (.v(inner), .w(w));
        endmodule
        module t();
          reg [3:0] c = 0;
          wire [3:0] out;
          mid m1 (.v(c), .w(out));
          always @(posedge clk) begin
            c <= c + 1;
            if (c == 5) $display("%d", out);
            if (c == 5) $finish;
          end
        endmodule
        """
        result = run_circuit(parse_verilog(src), 100)
        assert result.displays == ["7"]  # 5 + 1 + 1

    def test_two_instances_isolated_state(self):
        src = """
        module counter_m(input clk, input [7:0] step, output [7:0] q);
          reg [7:0] c = 0;
          always @(posedge clk) c <= c + step;
          assign q = c;
        endmodule
        module t();
          reg [7:0] cyc = 0;
          wire [7:0] q1;
          wire [7:0] q2;
          counter_m a (.clk(clk), .step(8'd1), .q(q1));
          counter_m b (.clk(clk), .step(8'd3), .q(q2));
          always @(posedge clk) begin
            cyc <= cyc + 1;
            if (cyc == 4) $display("%d %d", q1, q2);
            if (cyc == 4) $finish;
          end
        endmodule
        """
        result = run_circuit(parse_verilog(src), 100)
        assert result.displays == ["4 12"]

    def test_unconnected_input_defaults_to_zero(self):
        src = """
        module inc(input [7:0] v, output [7:0] w);
          assign w = v + 5;
        endmodule
        module t();
          wire [7:0] w;
          inc u (.w(w));
          always @(posedge clk) begin
            $display("%d", w);
            $finish;
          end
        endmodule
        """
        result = run_circuit(parse_verilog(src), 10)
        assert result.displays == ["5"]

    def test_unknown_module_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog("""
            module t();
              ghost g (.a(1'b0));
              always @(posedge clk) $finish;
            endmodule
            """)

    def test_ambiguous_top_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog("""
            module a(); always @(posedge clk) $finish; endmodule
            module b(); always @(posedge clk) $finish; endmodule
            """)

    def test_hierarchy_compiles_to_manticore(self):
        golden = NetlistInterpreter(parse_verilog(HIER_SRC)).run(100)
        res = compile_circuit(parse_verilog(HIER_SRC),
                              CompilerOptions(config=TINY))
        mres = Machine(res.program, TINY).run(100)
        assert mres.displays == golden.displays


class TestCaseStatement:
    def test_priority_and_multi_labels(self):
        result = run_verilog("""
        module t();
          reg [2:0] st = 0;
          reg [7:0] out = 0;
          always @(posedge clk) begin
            case (st)
              3'd0: out <= 10;
              3'd1, 3'd2: out <= 20;
              3'd3: begin out <= 30; st <= 6; end
              default: out <= 99;
            endcase
            if (st != 3) st <= st + 1;
            if (st == 6) $display("out=%d", out);
            if (st == 6) $finish;
          end
        endmodule
        """)
        assert result.displays == ["out=30"]

    def test_default_only(self):
        result = run_verilog("""
        module t();
          reg [3:0] c = 0;
          always @(posedge clk) begin
            case (c)
              default: c <= c + 2;
            endcase
            if (c == 8) $finish;
          end
        endmodule
        """)
        assert result.cycles == 5

    def test_case_state_machine_compiles(self):
        src = """
        module t();
          reg [1:0] st = 0;
          reg [7:0] acc = 0;
          always @(posedge clk) begin
            case (st)
              2'd0: begin acc <= acc + 1; st <= 1; end
              2'd1: begin acc <= acc * 2; st <= 2; end
              2'd2: begin acc <= acc + 3; st <= 0; end
            endcase
            if (acc > 60) $display("acc=%d", acc);
            if (acc > 60) $finish;
          end
        endmodule
        """
        golden = NetlistInterpreter(parse_verilog(src)).run(200)
        res = compile_circuit(parse_verilog(src),
                              CompilerOptions(config=TINY))
        mres = Machine(res.program, TINY).run(200)
        assert mres.displays == golden.displays

    def test_empty_case_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog("""
            module t();
              reg [1:0] st = 0;
              always @(posedge clk) begin
                case (st)
                endcase
              end
            endmodule
            """)


class TestCombinationalAlways:
    def test_case_decoder(self):
        result = run_verilog("""
        module t();
          reg [1:0] st = 0;
          reg [7:0] nextval;
          always @(*) begin
            case (st)
              2'd0: nextval = 8'd5;
              2'd1: nextval = 8'd9;
              default: nextval = 8'd1;
            endcase
          end
          reg [7:0] acc = 0;
          always @(posedge clk) begin
            acc <= acc + nextval;
            st <= st + 1;
            if (st == 3) $display("acc=%d", acc);
            if (st == 3) $finish;
          end
        endmodule
        """)
        assert result.displays == ["acc=15"]  # 5 + 9 + 1

    def test_if_with_default_before(self):
        result = run_verilog("""
        module t();
          reg [3:0] c = 0;
          reg [7:0] v;
          always @(*) begin
            v = 8'd1;
            if (c > 2) v = 8'd7;
          end
          always @(posedge clk) begin
            c <= c + 1;
            if (c == 4) $display("%d", v);
            if (c == 4) $finish;
          end
        endmodule
        """)
        assert result.displays == ["7"]

    def test_latch_rejected(self):
        with pytest.raises(VerilogError, match="latch"):
            parse_verilog("""
            module t();
              reg [3:0] c = 0;
              reg [7:0] v;
              always @(*) begin
                if (c > 2) v = 8'd7;   // no else, no default
              end
              always @(posedge clk) begin
                c <= c + 1;
                if (v == 7) $finish;
              end
            endmodule
            """)

    def test_last_wins_priority(self):
        result = run_verilog("""
        module t();
          reg [7:0] v;
          always @(*) begin
            v = 8'd1;
            v = 8'd2;
          end
          always @(posedge clk) begin
            $display("%d", v);
            $finish;
          end
        endmodule
        """)
        assert result.displays == ["2"]

    def test_comb_chain_through_blocks(self):
        result = run_verilog("""
        module t();
          reg [7:0] a;
          reg [7:0] b;
          reg [3:0] c = 3;
          always @(*) a = c + 1;
          always @(*) b = a * 2;
          always @(posedge clk) begin
            $display("%d", b);
            $finish;
          end
        endmodule
        """)
        assert result.displays == ["8"]

    def test_comb_compiles_to_manticore(self):
        src = """
        module t();
          reg [3:0] st = 0;
          reg [7:0] onehot;
          always @(*) begin
            case (st[1:0])
              2'd0: onehot = 8'b0001;
              2'd1: onehot = 8'b0010;
              2'd2: onehot = 8'b0100;
              default: onehot = 8'b1000;
            endcase
          end
          reg [15:0] acc = 0;
          always @(posedge clk) begin
            st <= st + 1;
            acc <= acc + onehot;
            if (st == 9) $display("%d", acc);
            if (st == 9) $finish;
          end
        endmodule
        """
        golden = NetlistInterpreter(parse_verilog(src)).run(200)
        res = compile_circuit(parse_verilog(src),
                              CompilerOptions(config=TINY))
        mres = Machine(res.program, TINY).run(200)
        assert mres.displays == golden.displays

    def test_multiple_drivers_rejected(self):
        with pytest.raises(VerilogError, match="multiple drivers"):
            parse_verilog("""
            module t();
              reg [7:0] v;
              always @(*) v = 8'd1;
              always @(*) v = 8'd2;
              always @(posedge clk) $finish;
            endmodule
            """)


class TestForLoops:
    def test_unrolled_accumulate(self):
        result = run_verilog("""
        module t();
          integer i;
          reg [3:0] c = 0;
          reg [15:0] mem [0:7];
          reg [15:0] total;
          always @(*) begin
            total = 0;
            for (i = 0; i < 8; i = i + 1)
              total = total + mem[i];
          end
          always @(posedge clk) begin
            c <= c + 1;
            for (i = 0; i < 8; i = i + 1)
              if (c == i) mem[i] <= i * 10;
            if (c == 9) $display("total=%d", total);
            if (c == 9) $finish;
          end
        endmodule
        """)
        assert result.displays == ["total=280"]

    def test_loop_var_in_expressions(self):
        result = run_verilog("""
        module t();
          integer k;
          reg [15:0] v;
          always @(*) begin
            v = 0;
            for (k = 1; k < 5; k = k + 1)
              v = v + k * k;
          end
          always @(posedge clk) begin
            $display("%d", v);
            $finish;
          end
        endmodule
        """)
        assert result.displays == ["30"]  # 1 + 4 + 9 + 16

    def test_bad_step_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog("""
            module t();
              integer i;
              reg [7:0] v;
              always @(*) begin
                v = 0;
                for (i = 0; i < 4; i = i + 2) v = v + 1;
              end
              always @(posedge clk) $finish;
            endmodule
            """)

    def test_huge_loop_rejected(self):
        with pytest.raises(VerilogError, match="unrolls"):
            parse_verilog("""
            module t();
              integer i;
              reg [7:0] v;
              always @(*) begin
                v = 0;
                for (i = 0; i < 100000; i = i + 1) v = v + 1;
              end
              always @(posedge clk) $finish;
            endmodule
            """)

    def test_for_compiles_to_manticore(self):
        src = """
        module t();
          integer i;
          reg [3:0] c = 0;
          reg [15:0] squares;
          always @(*) begin
            squares = 0;
            for (i = 0; i < 4; i = i + 1)
              squares = squares + i * i;
          end
          reg [15:0] acc = 0;
          always @(posedge clk) begin
            c <= c + 1;
            acc <= acc + squares;
            if (c == 5) $display("%d", acc);
            if (c == 5) $finish;
          end
        endmodule
        """
        golden = NetlistInterpreter(parse_verilog(src)).run(100)
        res = compile_circuit(parse_verilog(src),
                              CompilerOptions(config=TINY))
        mres = Machine(res.program, TINY).run(100)
        assert mres.displays == golden.displays

class TestMultipleAlways:
    def test_blocks_merge_in_source_order(self):
        result = run_verilog("""
        module t();
          reg [7:0] cyc = 0;
          reg [7:0] a = 0;
          reg [7:0] b = 0;
          always @(posedge clk) begin
            cyc <= cyc + 1;
            a <= a + 2;
          end
          always @(posedge clk) begin
            b <= a + 1;
            if (cyc == 3) $display("a=%0d b=%0d", a, b);
            if (cyc == 3) $finish;
          end
        endmodule
        """)
        assert result.displays == ["a=6 b=5"]

    def test_later_block_wins_on_collision(self):
        result = run_verilog("""
        module t();
          reg [7:0] v = 0;
          always @(posedge clk) v <= 8'd1;
          always @(posedge clk) v <= 8'd2;
          always @(posedge clk) begin
            if (v == 2) $display("v=%0d", v);
            if (v == 2) $finish;
          end
        endmodule
        """)
        assert result.displays == ["v=2"]

    def test_merged_blocks_compile_to_manticore(self):
        src = """
        module t();
          reg [7:0] cyc = 0;
          reg [15:0] acc = 0;
          always @(posedge clk) cyc <= cyc + 1;
          always @(posedge clk) acc <= acc + cyc;
          always @(posedge clk) begin
            if (cyc == 9) $display("%0d", acc);
            if (cyc == 9) $finish;
          end
        endmodule
        """
        golden = NetlistInterpreter(parse_verilog(src)).run(100)
        res = compile_circuit(parse_verilog(src),
                              CompilerOptions(config=TINY))
        mres = Machine(res.program, TINY).run(100)
        assert mres.displays == golden.displays == ["36"]


class TestCasez:
    def test_priority_encoder(self):
        result = run_verilog("""
        module t();
          reg [3:0] s = 0;
          reg [7:0] o = 0;
          reg [7:0] cyc = 0;
          always @(posedge clk) begin
            cyc <= cyc + 1;
            s <= s + 1;
            casez (s)
              4'b1???: o <= 8'd8;
              4'b01??: o <= 8'd4;
              4'b001?: o <= 8'd2;
              4'b0001: o <= 8'd1;
              default: o <= 8'd0;
            endcase
            if (cyc > 0) $display("%0d", o);
            if (cyc == 9) $finish;
          end
        endmodule
        """)
        # o displayed at cycle n reflects s = n - 1.
        assert [int(d) for d in result.displays] == \
            [0, 1, 2, 2, 4, 4, 4, 4, 8]

    def test_casex_hex_wildcards(self):
        result = run_verilog("""
        module t();
          reg [7:0] s = 8'hA5;
          reg [3:0] r = 0;
          always @(posedge clk) begin
            casex (s)
              8'hFx: r <= 4'd1;
              8'hAx: r <= 4'd2;
              default: r <= 4'd3;
            endcase
            if (r != 0) $display("%0d", r);
            if (r != 0) $finish;
          end
        endmodule
        """)
        assert result.displays == ["2"]

    def test_x_digit_rejected_in_casez(self):
        with pytest.raises(VerilogError):
            parse_verilog("""
            module t();
              reg [3:0] s = 0;
              reg [3:0] r = 0;
              always @(posedge clk) begin
                casez (s)
                  4'b1xxx: r <= 1;
                  default: r <= 0;
                endcase
                $finish;
              end
            endmodule
            """)

    def test_casez_compiles_to_manticore(self):
        src = """
        module t();
          reg [5:0] s = 1;
          reg [15:0] acc = 0;
          reg [7:0] cyc = 0;
          always @(posedge clk) begin
            cyc <= cyc + 1;
            s <= {s[4:0], s[5]};
            casez (s)
              6'b1?????: acc <= acc + 32;
              6'b?1????: acc <= acc + 16;
              6'b??1???: acc <= acc + 8;
              default: acc <= acc + 1;
            endcase
            if (cyc == 11) $display("%0d", acc);
            if (cyc == 11) $finish;
          end
        endmodule
        """
        golden = NetlistInterpreter(parse_verilog(src)).run(100)
        res = compile_circuit(parse_verilog(src),
                              CompilerOptions(config=TINY))
        mres = Machine(res.program, TINY).run(100)
        assert mres.displays == golden.displays


class TestInitialBlocks:
    def test_register_and_memory_stores(self):
        result = run_verilog("""
        module t();
          reg [15:0] acc;
          reg [7:0] cyc = 0;
          reg [15:0] m [0:7];
          integer i;
          initial begin
            acc = 16'h1234;
            m[0] = 5;
            for (i = 1; i < 8; i = i + 1) m[i] = i * 3;
          end
          always @(posedge clk) begin
            cyc <= cyc + 1;
            acc <= acc + m[cyc[2:0]];
            if (cyc == 8) $display("acc=%x", acc);
            if (cyc == 8) $finish;
          end
        endmodule
        """)
        expect = 0x1234 + 5 + sum(i * 3 for i in range(1, 8))
        assert result.displays == [f"acc={expect:x}"]

    def test_last_store_wins(self):
        result = run_verilog("""
        module t();
          reg [7:0] a = 1;
          initial a = 2;
          initial a = 3;
          always @(posedge clk) begin
            $display("%0d", a);
            $finish;
          end
        endmodule
        """)
        assert result.displays == ["3"]

    def test_initial_survives_flattening(self):
        result = run_verilog("""
        module rom(input [1:0] addr, output [7:0] data);
          reg [7:0] words [0:3];
          initial begin
            words[0] = 8'h10;
            words[1] = 8'h20;
            words[2] = 8'h30;
            words[3] = 8'h40;
          end
          assign data = words[addr];
        endmodule
        module t();
          reg [1:0] a = 0;
          wire [7:0] d;
          rom u (.addr(a), .data(d));
          always @(posedge clk) begin
            a <= a + 1;
            $display("%x", d);
            if (a == 3) $finish;
          end
        endmodule
        """)
        assert result.displays == ["10", "20", "30", "40"]

    def test_memory_init_compiles_to_manticore(self):
        src = """
        module t();
          reg [7:0] cyc = 0;
          reg [15:0] m [0:15];
          reg [31:0] acc = 0;
          integer i;
          initial for (i = 0; i < 16; i = i + 1) m[i] = i * 7 + 1;
          always @(posedge clk) begin
            cyc <= cyc + 1;
            acc <= acc + m[cyc[3:0]];
            if (cyc == 16) $display("%0d", acc);
            if (cyc == 16) $finish;
          end
        endmodule
        """
        golden = NetlistInterpreter(parse_verilog(src)).run(100)
        res = compile_circuit(parse_verilog(src),
                              CompilerOptions(config=TINY))
        mres = Machine(res.program, TINY).run(100)
        assert mres.displays == golden.displays

    def test_out_of_range_index_rejected(self):
        with pytest.raises(VerilogError, match="out of range"):
            parse_verilog("""
            module t();
              reg [7:0] m [0:3];
              initial m[9] = 1;
              always @(posedge clk) $finish;
            endmodule
            """)


class TestDriverWrapper:
    SRC = """
    module adder(input clk, input [7:0] x, input [7:0] y,
                 output [8:0] s);
      reg [8:0] acc = 0;
      always @(posedge clk) acc <= x + y;
      assign s = acc;
    endmodule
    """

    def test_ported_top_wrapped_and_finishes(self):
        circuit = parse_verilog(self.SRC, wrap=16)
        result = run_circuit(circuit, 64)
        assert result.finished
        assert len(result.displays) == 1
        assert result.displays[0].startswith("driver: 16 cycles")

    def test_wrap_is_deterministic(self):
        a = parse_verilog(self.SRC, wrap=16)
        b = parse_verilog(self.SRC, wrap=16)
        assert a.fingerprint() == b.fingerprint()
        assert run_circuit(a, 64).displays == \
            run_circuit(b, 64).displays

    def test_unwrapped_ported_top_still_rejected(self):
        with pytest.raises(VerilogError, match="ports"):
            parse_verilog(self.SRC)

    def test_wide_and_output_free_ports(self):
        src = """
        module sink(input clk, input [63:0] big);
          reg [63:0] acc = 0;
          always @(posedge clk) acc <= acc + big;
        endmodule
        """
        result = run_circuit(parse_verilog(src, wrap=32), 100)
        assert result.finished and len(result.displays) == 1

    def test_wrapped_design_compiles_to_manticore(self):
        golden = NetlistInterpreter(parse_verilog(self.SRC,
                                                  wrap=24)).run(100)
        res = compile_circuit(parse_verilog(self.SRC, wrap=24),
                              CompilerOptions(config=TINY))
        mres = Machine(res.program, TINY).run(100)
        assert mres.displays == golden.displays
