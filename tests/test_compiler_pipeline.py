"""Compiler pipeline tests: every phase plus end-to-end differential
validation against the golden netlist interpreter."""

import pytest

from repro.compiler import (
    CompilerError,
    CompilerOptions,
    compile_circuit,
    lower_circuit,
    merge_balanced,
    merge_lpt,
    optimize,
    split,
)
from repro.compiler.merge import build_processes, sequence_commit_movs
from repro.compiler.lir import Mov
from repro.isa import FunctionalInterpreter
from repro.machine import Machine, MachineConfig, TINY
from repro.netlist import CircuitBuilder, NetlistInterpreter

from repro.fuzz.generator import (
    accumulator_circuit,
    counter_circuit,
    logic_heavy_circuit,
    memory_circuit,
    random_circuit,
)


def run_both(circuit, max_cycles=200, config=TINY, **opt_kwargs):
    """Compile, run golden + machine, and return both results."""
    golden = NetlistInterpreter(circuit).run(max_cycles)
    result = compile_circuit(circuit, CompilerOptions(config=config,
                                                      **opt_kwargs))
    machine = Machine(result.program, config)
    mres = machine.run(max_cycles)
    return golden, mres, result


class TestEndToEnd:
    def test_counter(self):
        golden, mres, _ = run_both(counter_circuit())
        assert mres.displays == golden.displays
        assert mres.vcycles == golden.cycles
        assert mres.finished

    def test_wide_accumulator(self):
        golden, mres, _ = run_both(accumulator_circuit())
        assert mres.displays == golden.displays

    def test_memory_readback(self):
        golden, mres, _ = run_both(memory_circuit())
        assert mres.displays == golden.displays
        assert mres.finished

    def test_logic_heavy_with_custom_functions(self):
        golden, mres, res = run_both(logic_heavy_circuit())
        assert mres.displays == golden.displays
        assert res.report.custom is not None

    def test_logic_heavy_without_custom_functions(self):
        golden, mres, _ = run_both(logic_heavy_circuit(),
                                   enable_custom_functions=False)
        assert mres.displays == golden.displays

    def test_lpt_strategy_matches_semantics(self):
        golden, mres, _ = run_both(counter_circuit(),
                                   merge_strategy="lpt")
        assert mres.displays == golden.displays

    @pytest.mark.parametrize("seed", range(12))
    def test_random_circuits(self, seed):
        circuit = random_circuit(seed)
        golden, mres, _ = run_both(circuit, max_cycles=20)
        assert mres.displays == golden.displays
        assert mres.vcycles == golden.cycles

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_single_core(self, seed):
        config = MachineConfig(grid_x=1, grid_y=1, result_latency=4,
                               imem_words=4096)
        circuit = random_circuit(seed + 100, n_ops=15)
        golden, mres, _ = run_both(circuit, max_cycles=12, config=config)
        assert mres.displays == golden.displays


class TestFunctionalInterpreterAgreement:
    """The lower interpreter must agree with the machine (paper SS6:
    interpreters validate compiler passes)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_image_matches_golden(self, seed):
        circuit = random_circuit(seed + 50, n_ops=20)
        golden = NetlistInterpreter(circuit).run(15)
        result = compile_circuit(circuit, CompilerOptions(config=TINY))
        fres = FunctionalInterpreter(result.image).run(15)
        assert fres.displays == golden.displays
        assert fres.vcycles == golden.cycles


class TestSplitMerge:
    def make_partitioned(self, circuit):
        return split(lower_circuit(optimize(circuit)))

    def test_split_produces_multiple_partitions(self):
        prog = self.make_partitioned(accumulator_circuit())
        assert len(prog.partitions) >= 2

    def test_split_single_privileged_partition(self):
        prog = self.make_partitioned(counter_circuit())
        priv = [p for p in prog.partitions if p.privileged]
        assert len(priv) == 1

    def test_memory_colocation(self):
        prog = self.make_partitioned(memory_circuit())
        design = prog.design
        for memory, users in design.memory_users.items():
            holders = [p for p in prog.partitions if p.indices & users]
            assert len(holders) == 1, f"memory {memory} split across cores"

    def test_merge_respects_core_limit(self):
        prog = self.make_partitioned(accumulator_circuit())
        for strategy in (merge_balanced, merge_lpt):
            merged = strategy(prog, 3)
            assert len(merged.partitions) <= 3

    def test_balanced_reduces_sends_vs_lpt(self):
        # The headline claim of SS7.8.1/Table 4: B produces fewer Sends.
        circuit = optimize(random_circuit(7, n_ops=60, n_regs=8))
        prog = split(lower_circuit(circuit))
        if len(prog.partitions) < 4:
            pytest.skip("design too small to partition meaningfully")
        b = merge_balanced(prog, 4)
        lpt = merge_lpt(prog, 4)
        assert b.send_count() <= lpt.send_count()

    def test_build_processes_pid_zero_is_privileged(self):
        prog = self.make_partitioned(counter_circuit())
        image = build_processes(merge_balanced(prog, 4))
        assert image.processes[0].privileged


class TestSequenceCommitMovs:
    def test_independent(self):
        movs = sequence_commit_movs([("a", "x"), ("b", "y")])
        assert movs == [Mov("a", "x"), Mov("b", "y")]

    def test_chain_order(self):
        # b <- a, a <- x : must copy b first.
        movs = sequence_commit_movs([("a", "x"), ("b", "a")])
        assert movs.index(Mov("b", "a")) < movs.index(Mov("a", "x"))

    def test_swap_uses_temp(self):
        movs = sequence_commit_movs([("a", "b"), ("b", "a")])
        assert len(movs) == 3
        srcs = {m.rs for m in movs}
        assert any(str(s).startswith("%swap") for s in srcs)
        # Simulate to verify the swap result.
        env = {"a": 1, "b": 2}
        for mov in movs:
            env[mov.rd] = env[mov.rs]
        assert env["a"] == 2 and env["b"] == 1

    def test_self_copy_dropped(self):
        assert sequence_commit_movs([("a", "a")]) == []

    def test_rotation_cycle(self):
        movs = sequence_commit_movs([("a", "b"), ("b", "c"), ("c", "a")])
        env = {"a": 1, "b": 2, "c": 3}
        for mov in movs:
            env[mov.rd] = env[mov.rs]
        assert (env["a"], env["b"], env["c"]) == (2, 3, 1)


class TestReport:
    def test_report_fields(self):
        result = compile_circuit(counter_circuit(),
                                 CompilerOptions(config=TINY))
        report = result.report
        assert report.vcpl >= 1
        assert 1 <= report.cores_used <= 4
        assert report.times.total > 0
        assert report.breakdown["vcpl"] == report.vcpl
        assert report.max_imem <= TINY.imem_words
        rate = report.simulated_rate_khz(500.0)
        assert rate == pytest.approx(500e3 / report.vcpl)

    def test_grid_too_small(self):
        config = MachineConfig(grid_x=1, grid_y=1)
        with pytest.raises(CompilerError):
            compile_circuit(
                counter_circuit(),
                CompilerOptions(config=config, max_cores=5))

    def test_open_circuit_rejected(self):
        m = CircuitBuilder("open")
        x = m.input("x", 8)
        m.output("y", x)
        with pytest.raises(CompilerError):
            compile_circuit(m.build())


class TestSchedulerContract:
    def test_vcpl_covers_pipeline_drain(self):
        result = compile_circuit(counter_circuit(),
                                 CompilerOptions(config=TINY))
        scheduled = result.scheduled
        for core in scheduled.cores.values():
            last = max((c for c, _ in core.items), default=0)
            assert scheduled.vcpl >= last + 1

    def test_strict_machine_detects_no_hazards(self):
        # Implicit in every end-to-end test, made explicit here: the
        # machine runs in strict mode (hazard fault on in-flight reads)
        # and the compiled schedule never trips it.
        result = compile_circuit(accumulator_circuit(),
                                 CompilerOptions(config=TINY))
        machine = Machine(result.program, TINY, strict=True)
        machine.run(60)  # would raise HazardError on a bad schedule

    def test_epilogue_lengths_match_messages(self):
        result = compile_circuit(accumulator_circuit(),
                                 CompilerOptions(config=TINY))
        total_sends = sum(
            1 for core in result.scheduled.cores.values()
            for _, instr in core.items
            if type(instr).__name__ == "Send"
        )
        total_slots = sum(c.epilogue_length
                          for c in result.scheduled.cores.values())
        assert total_sends == total_slots
