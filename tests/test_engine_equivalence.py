"""Strict vs fast execution engines must be bit-identical.

The fast engine's whole contract (verify-once-then-trust, see
``repro.machine.fastpath``) is that eliding the per-event hazard, NoC,
and writeback bookkeeping changes *nothing observable*: registers,
scratchpads, displays, perf counters, and cache statistics all match the
strict engine exactly.  This file enforces that contract over every
design in the registry, for both the machine model and the netlist
interpreter's compiled engine.
"""

from __future__ import annotations

import functools

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import ENGINES, Machine, MachineConfig
from repro.netlist.interp import NetlistInterpreter

CONFIG = MachineConfig(grid_x=8, grid_y=8)

ALL_DESIGNS = sorted(DESIGNS)


@functools.lru_cache(maxsize=None)
def _circuit(name: str):
    return DESIGNS[name].build()


@functools.lru_cache(maxsize=None)
def _compiled(name: str):
    options = CompilerOptions(config=CONFIG)
    return compile_circuit(_circuit(name), options)


def _budget(name: str) -> int:
    # At least 64 Vcycles of budget so the fast path gets real mileage
    # past its strict verification Vcycle.
    return max(64, DESIGNS[name].cycles + 300)


def _run(name: str, engine: str):
    machine = Machine(_compiled(name).program, CONFIG, engine=engine)
    result = machine.run(_budget(name))
    return machine, result


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_fast_engine_bit_identical(name):
    strict_m, strict_r = _run(name, "strict")
    fast_m, fast_r = _run(name, "fast")

    assert fast_r.vcycles == strict_r.vcycles
    assert fast_r.finished == strict_r.finished
    assert fast_r.displays == strict_r.displays
    assert fast_r.counters == strict_r.counters
    assert fast_r.cache == strict_r.cache

    for cid, core in strict_m.cores.items():
        fast_core = fast_m.cores[cid]
        assert fast_core.regs == core.regs, f"core {cid} registers"
        assert fast_core.scratch == core.scratch, f"core {cid} scratch"


def test_fast_engine_actually_engages():
    """Guards against the equivalence test passing vacuously: the
    dispatcher must hand at least some Vcycles to the trusted fast
    path (mc runs long enough and is display-quiet mid-run)."""
    machine = Machine(_compiled("mc").program, CONFIG, engine="fast")
    budget = _budget("mc")
    trusted = 0
    while not machine.finished and machine.counters.vcycles < budget:
        if machine._trusted:
            trusted += 1
        machine.step_vcycle()
    assert trusted > 0


def test_engine_validation():
    assert set(ENGINES) == {"strict", "permissive", "fast", "codegen"}
    with pytest.raises(ValueError):
        Machine(_compiled("mc").program, CONFIG, engine="warp")
    with pytest.raises(ValueError):
        NetlistInterpreter(_circuit("mc"), engine="warp")


def test_legacy_strict_flag_maps_to_engines():
    program = _compiled("mc").program
    assert Machine(program, CONFIG).engine == "strict"
    assert Machine(program, CONFIG, strict=False).engine == "permissive"


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_netlist_fast_engine_matches_reference(name):
    circuit = _circuit(name)
    cycles = min(DESIGNS[name].cycles, 128)
    ref = NetlistInterpreter(circuit)
    fast = NetlistInterpreter(circuit, engine="fast")
    ref_r = ref.run(cycles)
    fast_r = fast.run(cycles)

    assert fast_r.cycles == ref_r.cycles
    assert fast_r.finished == ref_r.finished
    assert fast_r.displays == ref_r.displays
    assert fast.registers == ref.registers
    assert fast.memories == ref.memories
    assert fast.trace == ref.trace
