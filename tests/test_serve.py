"""The serve path changes nothing: server results == direct runs.

Three layers of assurance for ``repro.serve``:

* unit coverage of the :class:`~repro.serve.jobs.Job` state machine
  (every legal edge walks, every illegal edge raises) and the
  :class:`~repro.serve.server.FairQueue` stride scheduler (dispatch
  shares track priorities; ties and re-activation are deterministic);
* the headline equivalence matrix — for >= 3 designs x >= 3 engines, a
  job submitted through the full server path (queue, compile-cache
  dedupe, worker execution under ``run_with_checkpoints``) must produce
  displays, completion, Vcycle count, counters, and an architectural
  state digest identical to a direct ``Machine.run`` of the same
  compiled program;
* the unix-socket front end round-trips submissions and metrics, and
  the metrics snapshot validates against ``docs/serve.schema.json``.
"""

from __future__ import annotations

import asyncio
import functools
import json
from pathlib import Path

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import Machine, MachineConfig
from repro.serve import (FairQueue, Job, JobStateError, ServeClient,
                         SimulationServer, serve_unix, state_digest)

CONFIG = MachineConfig(grid_x=8, grid_y=8)

#: The acceptance matrix: >= 3 designs x >= 3 engines.
MATRIX_DESIGNS = ("mm", "mc", "blur")
MATRIX_ENGINES = ("strict", "fast", "codegen")


def _budget(name: str) -> int:
    return max(64, DESIGNS[name].cycles + 300)


@functools.lru_cache(maxsize=None)
def _program(name: str):
    options = CompilerOptions(config=CONFIG)
    return compile_circuit(DESIGNS[name].build(), options).program


@functools.lru_cache(maxsize=None)
def _direct(name: str, engine: str):
    """Reference: a direct, uninterrupted Machine.run."""
    machine = Machine(_program(name), CONFIG, engine=engine)
    result = machine.run(_budget(name))
    return result, state_digest(machine)


# ---------------------------------------------------------------------------
# Job state machine.
# ---------------------------------------------------------------------------


def _job(**kw) -> Job:
    base = dict(id=1, tenant="t", design="mm", cycles=10, engine="fast")
    base.update(kw)
    return Job(**base)


def test_job_walks_the_happy_path():
    job = _job()
    for state in ("compiling", "running", "done"):
        job.advance(state)
    assert job.finished
    assert job.latency_s is not None and job.latency_s >= 0.0


def test_job_preemption_cycle_and_retry_edge():
    job = _job()
    job.advance("compiling")
    job.advance("running")
    job.advance("preempted")   # priority preemption
    job.advance("running")     # resumed (possibly elsewhere)
    job.advance("pending")     # lost-worker retry edge
    job.advance("compiling")
    job.advance("running")
    job.advance("done")
    assert job.finished


@pytest.mark.parametrize("start,bad", [
    ("pending", "running"),      # must compile first
    ("pending", "preempted"),    # only running jobs preempt
    ("pending", "done"),
    ("compiling", "preempted"),
    ("done", "running"),         # terminal states are terminal
    ("failed", "pending"),
])
def test_job_rejects_illegal_edges(start, bad):
    job = _job(state=start)
    with pytest.raises(JobStateError):
        job.advance(bad)


def test_job_fail_from_any_live_state_but_not_terminal():
    job = _job(state="running")
    job.fail("boom")
    assert job.state == "failed" and job.error == "boom"
    with pytest.raises(JobStateError):
        job.fail("again")


def test_job_unknown_state_rejected():
    with pytest.raises(JobStateError):
        _job().advance("zombie")


# ---------------------------------------------------------------------------
# Fair queue.
# ---------------------------------------------------------------------------


def test_fair_queue_shares_track_priority():
    queue = FairQueue()
    for i in range(6):
        queue.push(_job(id=10 + i, tenant="heavy", priority=2))
        queue.push(_job(id=20 + i, tenant="light", priority=1))
    order = [queue.pop().tenant for _ in range(9)]
    # Over any window the 2:1 priority ratio shows up as a 2:1
    # dispatch ratio.
    assert order.count("heavy") == 6
    assert order.count("light") == 3


def test_fair_queue_round_robins_equal_priorities():
    queue = FairQueue()
    for i in range(4):
        queue.push(_job(id=10 + i, tenant="a"))
        queue.push(_job(id=20 + i, tenant="b"))
    order = [queue.pop().tenant for _ in range(8)]
    assert order == ["a", "b"] * 4


def test_fair_queue_idle_tenant_cannot_bank_credit():
    queue = FairQueue()
    for i in range(8):
        queue.push(_job(id=10 + i, tenant="busy"))
    for _ in range(6):
        queue.pop()
    # A tenant arriving late starts at the current floor, not at zero
    # virtual time - it must not monopolize the next 6 dispatches.
    queue.push(_job(id=30, tenant="late"))
    queue.push(_job(id=31, tenant="late"))
    assert {queue.pop().tenant for _ in range(2)} == {"busy", "late"}


def test_fair_queue_avoid_worker_skips_pinned_head():
    queue = FairQueue()
    pinned = _job(id=1, tenant="a")
    pinned.avoid_worker = 0
    queue.push(pinned)
    queue.push(_job(id=2, tenant="b"))
    assert queue.pop(avoid_worker=0).id == 2
    assert queue.pop(avoid_worker=0) is None   # only the pinned job left
    assert queue.pop(avoid_worker=1).id == 1   # another worker takes it
    assert len(queue) == 0


# ---------------------------------------------------------------------------
# End-to-end bit-identity: server path vs direct run.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", MATRIX_ENGINES)
@pytest.mark.parametrize("name", MATRIX_DESIGNS)
def test_server_path_bit_identical_to_direct_run(name, engine):
    ref, ref_digest = _direct(name, engine)

    async def go():
        async with SimulationServer(workers=1, mode="thread",
                                    config=CONFIG) as server:
            job = await server.submit(design=name, engine=engine,
                                      cycles=_budget(name))
            return await server.wait(job.id, timeout=300)

    job = asyncio.run(go())
    assert job.state == "done", job.error
    out = job.result
    assert out["finished"] == ref.finished
    assert out["vcycles"] == ref.vcycles
    assert out["displays"] == ref.displays
    assert out["counters"] == ref.counters.as_dict()
    assert out["state_sha256"] == ref_digest


def test_concurrent_tenants_all_bit_identical():
    """Two workers, three tenants, interleaved engines - every result
    must still match its engine's direct run."""
    cases = [("mm", "strict"), ("mm", "fast"), ("mc", "fast"),
             ("mc", "codegen"), ("blur", "fast")]

    async def go():
        async with SimulationServer(workers=2, mode="thread",
                                    config=CONFIG) as server:
            jobs = [await server.submit(tenant=f"t{i % 3}", design=name,
                                        engine=engine,
                                        cycles=_budget(name))
                    for i, (name, engine) in enumerate(cases)]
            return [await server.wait(j.id, timeout=600) for j in jobs]

    for (name, engine), job in zip(cases, asyncio.run(go())):
        ref, ref_digest = _direct(name, engine)
        assert job.state == "done", (name, engine, job.error)
        assert job.result["state_sha256"] == ref_digest, (name, engine)
        assert job.result["displays"] == ref.displays


# ---------------------------------------------------------------------------
# Socket front end + metrics schema.
# ---------------------------------------------------------------------------


def test_unix_socket_round_trip_and_metrics_schema(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    schema = json.loads(
        (Path(__file__).resolve().parent.parent
         / "docs" / "serve.schema.json").read_text())

    async def go():
        from repro.obs import validate_profile, \
            validate_prometheus_textfile
        async with SimulationServer(workers=1, mode="thread",
                                    config=CONFIG) as server:
            sock = await serve_unix(server, socket_path)
            try:
                def client_session():
                    with ServeClient(socket_path) as client:
                        job_id = client.submit("mm", tenant="sock",
                                               engine="fast")
                        job = client.wait(job_id, timeout=300)
                        metrics = client.status()
                        prom = client.prometheus()
                        return job, metrics, prom

                job, metrics, prom = await asyncio.to_thread(
                    client_session)
            finally:
                sock.close()
                await sock.wait_closed()
        assert job["state"] == "done", job["error"]
        ref, ref_digest = _direct("mm", "fast")
        assert job["result"]["state_sha256"] == ref_digest
        assert validate_profile(metrics, schema) == []
        assert metrics["jobs"]["completed"] == 1
        assert metrics["tenants"]["sock"]["submitted"] == 1
        assert validate_prometheus_textfile(prom) == []
        assert "repro_serve_jobs_total" in prom

    asyncio.run(go())


def test_submit_validates_inputs():
    async def go():
        async with SimulationServer(workers=1, config=CONFIG) as server:
            with pytest.raises(ValueError):
                await server.submit(design="mm", engine="warp-drive")
            with pytest.raises(ValueError):
                await server.submit(design="mm", priority=0)
            with pytest.raises(ValueError):
                await server.submit()

    asyncio.run(go())
