"""Machine-model tests: cache, NoC routing, global stall, hazard
detection, bootloader round-trip."""

import pytest

from repro import isa
from repro.compiler import CompilerOptions, compile_circuit
from repro.isa.interp import HazardError, NoCDropError
from repro.isa.program import CoreBinary, ExceptionTable, MachineProgram
from repro.machine import Cache, Machine, MachineConfig, TINY
from repro.machine.boot import deserialize, serialize
from repro.designs import micro
from repro.netlist import CircuitBuilder

from repro.fuzz.generator import counter_circuit


class TestCache:
    def make(self, **kw):
        config = MachineConfig(cache_words=256, cache_line_words=8,
                               cache_hit_stall=10, cache_miss_stall=100,
                               cache_writeback_stall=50, **kw)
        return Cache(config)

    def test_miss_then_hit(self):
        cache = self.make()
        _, stall = cache.read(0)
        assert stall == 100
        _, stall = cache.read(1)  # same line
        assert stall == 10
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_write_read_roundtrip(self):
        cache = self.make()
        cache.write(40, 0xBEEF)
        value, _ = cache.read(40)
        assert value == 0xBEEF

    def test_writeback_on_conflict(self):
        cache = self.make()
        cache.write(0, 123)          # line 0, tag 0, dirty
        stall = 0
        _, stall = cache.read(256)   # line 0, tag 1 -> evict dirty
        assert stall == 150          # miss + writeback
        assert cache.dram[0] == 123
        value, _ = cache.read(0)     # reload original line
        assert value == 123
        assert cache.stats.writebacks == 1

    def test_flush(self):
        cache = self.make()
        cache.write(5, 55)
        assert 5 not in cache.dram
        cache.flush()
        assert cache.dram[5] == 55

    def test_peek_coherent(self):
        cache = self.make()
        cache.write(7, 77)
        assert cache.peek(7) == 77    # dirty line, not in DRAM yet
        assert cache.peek(999) == 0

    def test_sequential_hit_rate_high(self):
        cache = self.make()
        for addr in range(512):
            cache.read(addr)
        # One miss per 8-word line.
        assert cache.stats.misses == 512 // 8
        assert cache.stats.hit_rate > 0.85


class TestRouting:
    def test_route_is_unidirectional(self):
        config = MachineConfig(grid_x=4, grid_y=4)
        # going "west" must wrap east around the torus
        route = config.route(config.core_id(2, 0), config.core_id(1, 0))
        kinds = [k for k, _x, _y in route]
        assert kinds == ["E", "E", "E"]

    def test_dimension_order(self):
        config = MachineConfig(grid_x=4, grid_y=4)
        route = config.route(config.core_id(0, 0), config.core_id(2, 3))
        kinds = [k for k, _x, _y in route]
        assert kinds == ["E", "E", "S", "S", "S"]

    def test_route_latency_monotone_in_hops(self):
        config = MachineConfig(grid_x=8, grid_y=8)
        near = config.route_latency(0, 1)
        far = config.route_latency(0, config.core_id(7, 7))
        assert near < far

    def test_self_route_is_empty(self):
        config = MachineConfig(grid_x=4, grid_y=4)
        assert config.route(5, 5) == []


class TestGlobalStall:
    def _run_micro(self, circuit, cycles):
        config = MachineConfig(grid_x=1, grid_y=1)
        result = compile_circuit(circuit, CompilerOptions(config=config))
        machine = Machine(result.program, config)
        return machine.run(cycles + 10)

    def test_local_fifo_no_stalls(self):
        res = self._run_micro(micro.build_fifo(1024, cycles=64), 64)
        # Only the final $display mailbox write touches global memory;
        # FIFO data traffic stays in the scratchpad.
        assert res.cache.accesses <= 2

    def test_global_fifo_stalls(self):
        res = self._run_micro(
            micro.build_fifo(1024, cycles=64, force_global=True), 64)
        assert res.cache.accesses > 0
        assert res.counters.stall_cycles > 0
        # Sequential FIFO traffic has strong locality.
        assert res.cache.hit_rate > 0.8

    def test_random_ram_worse_locality_than_fifo(self):
        fifo = self._run_micro(
            micro.build_fifo(64 * 1024, cycles=128), 128)
        ram = self._run_micro(
            micro.build_ram(512 * 1024, cycles=128), 128)
        assert fifo.cache.hit_rate >= ram.cache.hit_rate

    def test_privileged_enforcement(self):
        # A GST executed by a non-privileged core faults.
        table = ExceptionTable()
        config = MachineConfig(grid_x=2, grid_y=1)
        prog = MachineProgram(
            name="bad", grid=(2, 1),
            cores={
                0: CoreBinary(body=[isa.Nop()], epilogue_length=0,
                              sleep_length=9),
                1: CoreBinary(body=[isa.GlobalLoad(1, (0, 0, 0))],
                              epilogue_length=0, sleep_length=9,
                              reg_init={0: 0}),
            },
            vcpl=10, exceptions=table, privileged_core=0)
        machine = Machine(prog, config)
        with pytest.raises(Exception):
            machine.run(1)


class TestHazardDetection:
    def test_strict_mode_catches_raw_violation(self):
        # Hand-craft a schedule that reads a register too early.
        config = MachineConfig(grid_x=1, grid_y=1, result_latency=8)
        body = [isa.Set(1, 42), isa.Alu("ADD", 2, 1, 1)]  # back-to-back
        prog = MachineProgram(
            name="hazard", grid=(1, 1),
            cores={0: CoreBinary(body=body, epilogue_length=0,
                                 sleep_length=20, reg_init={1: 0})},
            vcpl=22, exceptions=ExceptionTable())
        machine = Machine(prog, config, strict=True)
        with pytest.raises(HazardError):
            machine.run(1)

    def test_nonstrict_mode_reads_stale_value(self):
        config = MachineConfig(grid_x=1, grid_y=1, result_latency=8)
        body = [isa.Set(1, 42), isa.Alu("ADD", 2, 1, 1)]
        prog = MachineProgram(
            name="hazard", grid=(1, 1),
            cores={0: CoreBinary(body=body, epilogue_length=0,
                                 sleep_length=20, reg_init={1: 7})},
            vcpl=22, exceptions=ExceptionTable())
        machine = Machine(prog, config, strict=False)
        machine.run(1)
        assert machine.peek_reg(0, 2) == 14  # stale 7+7, not 84


class TestNoCFaults:
    def test_unconsumed_message_detected(self):
        config = MachineConfig(grid_x=2, grid_y=1)
        prog = MachineProgram(
            name="drop", grid=(2, 1),
            cores={
                0: CoreBinary(body=[isa.Send(1, 5, 0)], epilogue_length=0,
                              sleep_length=30, reg_init={0: 9}),
                1: CoreBinary(body=[isa.Nop()], epilogue_length=0,
                              sleep_length=30),
            },
            vcpl=31, exceptions=ExceptionTable())
        machine = Machine(prog, config)
        with pytest.raises(NoCDropError):
            machine.run(1)

    def test_message_delivery_updates_register(self):
        config = MachineConfig(grid_x=2, grid_y=1)
        lat = config.route_latency(0, 1)
        prog = MachineProgram(
            name="send", grid=(2, 1),
            cores={
                0: CoreBinary(body=[isa.Send(1, 5, 0)], epilogue_length=0,
                              sleep_length=30, reg_init={0: 9}),
                1: CoreBinary(body=[isa.Nop()] * (lat + 1),
                              epilogue_length=1, sleep_length=30 - lat - 1,
                              reg_init={5: 0}),
            },
            vcpl=31, exceptions=ExceptionTable())
        machine = Machine(prog, config)
        machine.step_vcycle()
        assert machine.peek_reg(1, 5) == 9


class TestBootloader:
    def test_roundtrip_counter(self):
        config = TINY
        result = compile_circuit(counter_circuit(),
                                 CompilerOptions(config=config))
        stream = serialize(result.program)
        restored = deserialize(stream)
        assert restored.vcpl == result.program.vcpl
        assert restored.grid == result.program.grid
        assert sorted(restored.cores) == sorted(result.program.cores)
        for cid, binary in result.program.cores.items():
            other = restored.cores[cid]
            assert other.body == binary.body
            assert other.reg_init == binary.reg_init
            assert other.cfu == binary.cfu
            assert other.epilogue_length == binary.epilogue_length

    def test_restored_binary_runs_identically(self):
        config = TINY
        result = compile_circuit(counter_circuit(),
                                 CompilerOptions(config=config))
        direct = Machine(result.program, config).run(100)
        restored = Machine(deserialize(serialize(result.program)),
                           config).run(100)
        assert restored.displays == direct.displays
        assert restored.vcycles == direct.vcycles

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize(b"\x00" * 64)


class TestPerfCounters:
    def test_counts_accumulate(self):
        config = TINY
        result = compile_circuit(counter_circuit(),
                                 CompilerOptions(config=config))
        machine = Machine(result.program, config)
        res = machine.run(100)
        c = res.counters
        assert c.vcycles == res.vcycles
        assert c.compute_cycles == c.vcycles * result.program.vcpl
        assert c.instructions > 0
        assert c.total_cycles == c.compute_cycles + c.stall_cycles

    def test_rate_uses_total_cycles(self):
        config = TINY
        result = compile_circuit(counter_circuit(display=False),
                                 CompilerOptions(config=config))
        machine = Machine(result.program, config)
        res = machine.run(50)
        khz = res.simulation_rate_khz(500.0)
        expected = 500e3 * res.vcycles / res.counters.total_cycles
        assert khz == pytest.approx(expected)
