"""The fuzzing subsystem's own test suite: generator determinism,
circuit serialization, oracle-matrix comparison, fault detection with
cycle/signal localization, delta-debugging shrinking, corpus replay, and
the ``repro fuzz`` CLI."""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.fuzz import (
    CorpusEntry,
    GeneratorParams,
    fuzz_seed,
    generate,
    load_entry,
    matrix_oracles,
    replay_entry,
    run_matrix,
    save_entry,
    shrink,
)
from repro.fuzz.faults import fault_context
from repro.fuzz.oracle import FUZZ_CONFIG, MATRICES, ORACLES
from repro.fuzz.shrink import oracle_predicate
from repro.netlist import circuit_from_dict, circuit_to_dict
from repro.netlist.interp import NetlistInterpreter

SMALL = GeneratorParams().scaled(n_ops=14, n_regs=3, max_width=24,
                                 cycles=10)


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(6))
def test_generator_deterministic(seed):
    assert (generate(seed, SMALL).fingerprint()
            == generate(seed, SMALL).fingerprint())


def test_generator_seeds_differ():
    prints = {generate(s, SMALL).fingerprint() for s in range(10)}
    assert len(prints) == 10


def test_generator_params_roundtrip():
    params = GeneratorParams().scaled(n_ops=7, memories=False)
    assert GeneratorParams.from_dict(params.as_dict()) == params


def test_generator_covers_ir_surface():
    # The default params must keep exercising every feature family the
    # oracle matrix differentiates on: memories, dynamic shifts, wide
    # arithmetic, mux trees.
    kinds = set()
    for seed in range(12):
        circuit = generate(seed)
        kinds.update(op.kind.name for op in circuit.ops)
        assert circuit.memories, "default params should include a memory"
    for expected in ("MUL", "ASHR", "LSHR", "SHL", "MUX", "CONCAT",
                     "SLICE", "MEMRD", "ADD", "SUB"):
        assert expected in kinds, f"no {expected} in 12 seeds"


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 3, 9])
def test_circuit_serialization_roundtrip(seed):
    circuit = generate(seed, SMALL)
    clone = circuit_from_dict(circuit_to_dict(circuit))
    assert clone.fingerprint() == circuit.fingerprint()
    assert (NetlistInterpreter(clone).run(20).displays
            == NetlistInterpreter(circuit).run(20).displays)


def test_circuit_serialization_is_json():
    data = circuit_to_dict(generate(0, SMALL))
    assert circuit_from_dict(
        json.loads(json.dumps(data))).fingerprint() \
        == circuit_from_dict(data).fingerprint()


# ---------------------------------------------------------------------------
# Oracle matrix
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(4))
def test_quick_matrix_clean(seed):
    report = fuzz_seed(seed, SMALL, matrix="quick")
    assert report.ok, report.divergences[0].describe()


def test_matrix_presets_resolve():
    for name in MATRICES:
        assert matrix_oracles(name)


def test_matrix_comma_list_expands_presets():
    names = [s.name for s in matrix_oracles("quick,golden-buggy-sub")]
    assert names == ["interp-fast", "baseline-serial", "machine-strict",
                     "golden-buggy-sub"]


def test_fault_oracles_not_in_presets():
    for name, members in MATRICES.items():
        for member in members:
            assert ORACLES[member].fault is None, (name, member)


# ---------------------------------------------------------------------------
# Fault detection: the harness must catch known-bad semantics and name
# the first divergent cycle and signal.
# ---------------------------------------------------------------------------

def _first_divergence(matrix, seeds):
    for seed in seeds:
        report = fuzz_seed(seed, matrix=matrix)
        if not report.ok:
            return report
    pytest.fail(f"no divergence from {matrix} in seeds {seeds}")


def test_netlist_fault_detected_with_cycle_and_signal():
    report = _first_divergence("golden-buggy-sub", range(0, 10))
    d = report.divergences[0]
    assert d.oracle == "golden-buggy-sub"
    assert d.cycle is not None and d.signal is not None
    assert d.expected != d.actual


def test_machine_alu_fault_detected_with_cycle_and_signal():
    report = _first_divergence("machine-buggy-xor", range(8, 14))
    d = report.divergences[0]
    assert d.oracle == "machine-buggy-xor"
    assert d.cycle is not None and d.signal is not None


def test_fault_context_is_scoped():
    # Seed 7 (default params) has a live SUB feeding the trace display.
    circuit = generate(7)
    clean = NetlistInterpreter(circuit).run(20).displays
    with fault_context("netlist-sub-off-by-one"):
        faulty = NetlistInterpreter(circuit).run(20).displays
    assert faulty != clean
    assert NetlistInterpreter(circuit).run(20).displays == clean


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

def test_shrinker_reduces_seeded_bug_below_bound():
    report = _first_divergence("golden-buggy-sub", range(0, 10))
    params = report.params
    budget = params.cycles + 8
    circuit = generate(report.seed, params)
    predicate = oracle_predicate("golden-buggy-sub", budget)
    result = shrink(circuit, predicate)
    assert result.final_ops <= 10, result.summary()
    assert result.final_ops < result.initial_ops
    # The minimized circuit still triggers the same oracle.
    assert predicate(result.circuit) is not None


def test_shrink_preserves_divergence_oracle():
    report = _first_divergence("golden-buggy-sub", range(0, 10))
    budget = report.params.cycles + 8
    result = shrink(generate(report.seed, report.params),
                    oracle_predicate("golden-buggy-sub", budget))
    assert result.divergence.oracle == "golden-buggy-sub"


# ---------------------------------------------------------------------------
# Corpus
# ---------------------------------------------------------------------------

def test_corpus_roundtrip(tmp_path):
    circuit = generate(2, SMALL)
    entry = CorpusEntry(circuit=circuit, cycles=18, seed=2, params=SMALL,
                        matrix="quick", note="roundtrip")
    path = save_entry(entry, str(tmp_path))
    loaded = load_entry(path)
    assert loaded.circuit.fingerprint() == circuit.fingerprint()
    assert loaded.params == SMALL
    assert loaded.seed == 2 and loaded.cycles == 18
    assert loaded.divergence is None


def test_corpus_detects_tampering(tmp_path):
    entry = CorpusEntry(circuit=generate(2, SMALL), cycles=18)
    path = save_entry(entry, str(tmp_path))
    with open(path) as f:
        data = json.load(f)
    data["circuit"]["ops"][0]["attrs"]["value"] = 12345
    with open(path, "w") as f:
        json.dump(data, f)
    with pytest.raises(ValueError, match="fingerprint mismatch"):
        load_entry(path)


def test_corpus_replay_clean_entry(tmp_path):
    entry = CorpusEntry(circuit=generate(2, SMALL), cycles=18, seed=2,
                        params=SMALL, matrix="quick")
    path = save_entry(entry, str(tmp_path))
    _, divergences = replay_entry(load_entry(path))
    assert not divergences


def test_corpus_replay_fault_entry_deterministic(tmp_path):
    report = _first_divergence("golden-buggy-sub", range(0, 10))
    budget = report.params.cycles + 8
    result = shrink(generate(report.seed, report.params),
                    oracle_predicate("golden-buggy-sub", budget))
    entry = CorpusEntry(circuit=result.circuit, cycles=budget,
                        seed=report.seed, params=report.params,
                        oracle="golden-buggy-sub",
                        divergence=result.divergence)
    path = save_entry(entry, str(tmp_path))
    for _ in range(2):  # replay twice: must be byte-deterministic
        _, divergences = replay_entry(load_entry(path))
        assert divergences
        assert divergences[0].cycle == result.divergence.cycle
        assert divergences[0].signal == result.divergence.signal


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_fuzz_clean_hunt(capsys):
    assert cli_main(["fuzz", "--seeds", "0:2", "--matrix", "quick",
                     "--n-ops", "14", "--n-regs", "3",
                     "--max-width", "24"]) == 0
    assert "0 divergence(s)" in capsys.readouterr().err


def test_cli_fuzz_hunt_shrink_and_replay(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    rc = cli_main(["fuzz", "--seeds", "7:8",
                   "--matrix", "quick,golden-buggy-sub",
                   "--corpus-dir", corpus])
    out = capsys.readouterr()
    assert rc == 1
    assert "first divergence at" in out.out
    files = [os.path.join(corpus, f) for f in os.listdir(corpus)]
    assert len(files) == 1
    # Replaying the recorded repro reproduces the recorded divergence.
    assert cli_main(["fuzz", "--replay", files[0]]) == 0
    assert "first divergence at" in capsys.readouterr().out


def test_cli_fuzz_list_oracles(capsys):
    assert cli_main(["fuzz", "--list-oracles"]) == 0
    out = capsys.readouterr().out
    assert "machine-strict" in out and "matrix full" in out


def test_cli_fuzz_time_budget(capsys):
    assert cli_main(["fuzz", "--seeds", "0:100000",
                     "--matrix", "interp-fast",
                     "--time-budget", "2"]) == 0
    err = capsys.readouterr().err
    assert "0 divergence(s)" in err
