"""Shared circuit construction helpers for tests: small named designs and
a seeded random-circuit generator for differential testing."""

import random

from repro.netlist import CircuitBuilder


def counter_circuit(limit=9, width=8, display=True):
    m = CircuitBuilder("counter")
    count = m.register("count", width)
    count.next = (count + 1).trunc(width)
    if display:
        m.display(~count[0], "%d is an even number", count)
        m.display(count[0], "%d is an odd number", count)
    m.finish(count == limit)
    return m.build()


def accumulator_circuit(width=32, limit=50):
    """Wide arithmetic: exercises carry chains and multi-limb compare."""
    m = CircuitBuilder("accumulator")
    cyc = m.register("cyc", 16)
    acc = m.register("acc", width)
    cyc.next = (cyc + 1).trunc(16)
    acc.next = (acc + cyc.zext(width) * 3).trunc(width)
    done = cyc == limit
    m.display(done, "acc=%d", acc)
    m.finish(done)
    return m.build()


def memory_circuit(depth=16, cycles=40):
    """Scratchpad traffic: write then read back with assertion."""
    m = CircuitBuilder("memtest")
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)
    mem = m.memory("buf", width=16, depth=depth)
    addr = cyc.trunc(4) if depth == 16 else cyc.trunc(8)
    mem.write(addr, (cyc * 7).trunc(16), enable=m.const(1, 1))
    rd = mem.read(addr)
    # Value read this cycle is what was written `depth` cycles ago.
    expected = ((cyc - depth) * 7).trunc(16)
    valid = cyc.geu(depth)
    m.check(valid, rd == expected, "memory readback mismatch")
    m.finish(cyc == cycles)
    return m.build()


def logic_heavy_circuit(stages=6, limit=30):
    """Long bitwise chains: custom-function synthesis fodder."""
    m = CircuitBuilder("logic_heavy")
    cyc = m.register("cyc", 16)
    state = m.register("state", 16, init=0xACE1)
    cyc.next = (cyc + 1).trunc(16)
    x = state
    for i in range(stages):
        x = ((x & m.const(0xF0F0 >> (i % 4), 16))
             | (x ^ m.const(0x1234 + i, 16)))
    # LFSR-ish mixing to keep the state changing.
    state.next = (x ^ (state >> 1)).trunc(16)
    m.display(cyc == limit, "state=%x", state)
    m.finish(cyc == limit)
    return m.build()


_BIN_OPS = ["add", "sub", "and", "or", "xor", "mul", "eq", "ltu", "lts",
            "mux", "cat", "shl_const", "shr_const"]


def random_circuit(seed, n_ops=30, n_regs=4, max_width=36, cycles=None):
    """Seeded random closed circuit with a per-cycle state display.

    The display of every register value each cycle makes interpreter
    comparisons exhaustive: two simulators agree iff their display streams
    agree.
    """
    rng = random.Random(seed)
    m = CircuitBuilder(f"random_{seed}")
    regs = []
    for i in range(n_regs):
        width = rng.randint(1, max_width)
        regs.append(m.register(f"r{i}", width,
                               init=rng.getrandbits(width)))
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)

    pool = list(regs) + [cyc]
    for _ in range(n_ops):
        op = rng.choice(_BIN_OPS)
        a = rng.choice(pool)
        b = rng.choice(pool)
        try:
            if op == "add":
                value = a + b
            elif op == "sub":
                value = a - b
            elif op == "and":
                value = a & b
            elif op == "or":
                value = a | b
            elif op == "xor":
                value = a ^ b
            elif op == "mul":
                value = (a.mul_wide(b)).trunc(
                    min(a.width + b.width, max_width))
            elif op == "eq":
                value = a == b
            elif op == "ltu":
                value = a.ltu(b)
            elif op == "lts":
                value = a.lts(b)
            elif op == "mux":
                sel = rng.choice(pool)
                value = m.mux(sel[0], a, b.zext(max(a.width, b.width))
                              if b.width < a.width else b.trunc(a.width)
                              if b.width > a.width else b)
            elif op == "cat":
                value = m.cat(a, b)
                if value.width > max_width:
                    value = value.trunc(max_width)
            elif op == "shl_const":
                value = a << rng.randint(0, max(0, a.width - 1))
            else:
                value = a >> rng.randint(0, max(0, a.width - 1))
        except Exception:
            continue
        pool.append(value)

    # Bind each register's next value to a random same-width expression.
    for reg in regs:
        cands = [p for p in pool if p is not reg]
        src = rng.choice(cands)
        if src.width > reg.width:
            reg.next = src.trunc(reg.width)
        elif src.width < reg.width:
            reg.next = src.zext(reg.width)
        else:
            reg.next = src

    always = m.const(1, 1)
    m.display(always, "trace " + " ".join(["%x"] * len(regs)), *regs)
    m.finish(cyc == (cycles or 8))
    return m.build()
