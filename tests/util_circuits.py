"""Compatibility shim: these helpers moved to :mod:`repro.fuzz.generator`.

The shared circuit builders and the seeded random-circuit generator are
now part of the fuzzing subsystem (``src/repro/fuzz/generator.py``), where
``repro fuzz`` and the differential-oracle harness use them directly.
Import from ``repro.fuzz.generator`` in new code; this module only
re-exports the original names so out-of-tree scripts keep working.
"""

from repro.fuzz.generator import (  # noqa: F401
    accumulator_circuit,
    counter_circuit,
    logic_heavy_circuit,
    memory_circuit,
    random_circuit,
    random_memory_circuit,
)

__all__ = [
    "accumulator_circuit",
    "counter_circuit",
    "logic_heavy_circuit",
    "memory_circuit",
    "random_circuit",
    "random_memory_circuit",
]
