"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main

COUNTER_V = """
module counter();
  reg [7:0] c = 0;
  always @(posedge clk) begin
    c <= c + 1;
    if (c == 3) $display("done %d", c);
    if (c == 3) $finish;
  end
endmodule
"""


@pytest.fixture(autouse=True)
def hermetic_cache(tmp_path, monkeypatch):
    """The CLI caches compiles by default; keep tests off the real one."""
    monkeypatch.setenv("REPRO_COMPILE_CACHE", str(tmp_path / "ccache"))


@pytest.fixture()
def counter_file(tmp_path):
    path = tmp_path / "counter.v"
    path.write_text(COUNTER_V)
    return str(path)


class TestSimulate:
    def test_simulate(self, counter_file, capsys):
        assert main(["simulate", counter_file]) == 0
        assert "done 3" in capsys.readouterr().out


class TestCompile:
    def test_report(self, counter_file, capsys):
        assert main(["compile", counter_file, "--grid", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "VCPL" in out and "cores used" in out

    def test_asm_and_binary(self, counter_file, capsys, tmp_path):
        asm = tmp_path / "c.s"
        binary = tmp_path / "c.bin"
        assert main(["compile", counter_file, "--grid", "2", "2",
                     "--asm", str(asm), "--binary", str(binary)]) == 0
        assert ".p0:" in asm.read_text()
        assert binary.stat().st_size > 0
        # Disassemble the binary back.
        assert main(["disasm", str(binary)]) == 0
        out = capsys.readouterr().out
        assert "VCPL" in out


class TestRun:
    def test_run(self, counter_file, capsys):
        assert main(["run", counter_file, "--grid", "2", "2"]) == 0
        assert "done 3" in capsys.readouterr().out

    def test_run_with_vcd(self, counter_file, capsys, tmp_path):
        vcd = tmp_path / "c.vcd"
        assert main(["run", counter_file, "--grid", "2", "2",
                     "--vcd", str(vcd), "--trace", "c"]) == 0
        text = vcd.read_text()
        assert "$enddefinitions" in text
        assert "c_0" in text


class TestDesigns:
    def test_list(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in ("vta", "jpeg", "mc"):
            assert name in out

    def test_run_design(self, capsys):
        assert main(["design", "jpeg"]) == 0
        assert "jpeg decoded" in capsys.readouterr().out
