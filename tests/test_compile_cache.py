"""Content-addressed compile cache: fingerprints, hit/miss semantics,
corruption tolerance, atomicity, and LRU eviction."""

import dataclasses
import json
import pickle
import threading

import pytest

from repro.compiler import (
    CompilerOptions,
    compile_circuit,
    options_fingerprint,
)
from repro.compiler import cache as cache_mod
from repro.compiler.cache import (
    CompileCache,
    cache_from_options,
    compile_cache_key,
)
from repro.machine.boot import serialize
from repro.machine.config import TINY
from repro.netlist.ir import Circuit, Op, OpKind, Register, Wire
from repro.fuzz.generator import counter_circuit, logic_heavy_circuit


def _tiny_options(**kw) -> CompilerOptions:
    return CompilerOptions(config=TINY, **kw)


# ----------------------------------------------------------------------
# Circuit fingerprints.
# ----------------------------------------------------------------------

class TestCircuitFingerprint:
    def test_stable_across_rebuilds(self):
        assert (counter_circuit().fingerprint()
                == counter_circuit().fingerprint())

    def test_stable_across_op_insertion_order(self):
        def build(flip):
            a = Op(Wire("a", 8), OpKind.CONST, attrs={"value": 1})
            b = Op(Wire("b", 8), OpKind.ADD, (Wire("s", 8), Wire("a", 8)))
            c = Circuit("perm")
            c.registers["s"] = Register("s", 8, next_value=Wire("b", 8))
            c.ops = [b, a] if flip else [a, b]
            return c
        assert build(False).fingerprint() == build(True).fingerprint()

    def test_sensitive_to_structure(self):
        base = counter_circuit()
        assert (counter_circuit(limit=10).fingerprint()
                != base.fingerprint())
        mutated = counter_circuit()
        mutated.registers["count"].init = 3
        assert mutated.fingerprint() != base.fingerprint()

    def test_sensitive_to_effect_order(self):
        a, b = counter_circuit(), counter_circuit()
        b.effects = list(reversed(b.effects))
        assert a.fingerprint() != b.fingerprint()

    def test_stable_across_processes(self):
        # No dependence on PYTHONHASHSEED / id(): digest is pure content.
        circuit = logic_heavy_circuit()
        assert len(circuit.fingerprint()) == 64
        assert circuit.fingerprint() == logic_heavy_circuit().fingerprint()

    def test_verilog_frontend_stable_across_hash_seeds(self):
        # Regression: the frontend's If-merges iterated set unions, so
        # gensym'd mux wire names — and with them the fingerprint —
        # depended on PYTHONHASHSEED and warm-cache lookups missed
        # across process restarts.
        import os
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        source = root / "examples" / "uart_loopback.v"
        prog = ("import sys; from repro.netlist.verilog import "
                "parse_verilog; "
                "print(parse_verilog(open(sys.argv[1]).read())"
                ".fingerprint())")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(root / "src"), env.get("PYTHONPATH")) if p)
        digests = set()
        for seed in ("1", "2"):
            env["PYTHONHASHSEED"] = seed
            out = subprocess.run(
                [sys.executable, "-c", prog, str(source)],
                env=env, capture_output=True, text=True, check=True)
            digests.add(out.stdout.strip())
        assert len(digests) == 1


class TestOptionsFingerprint:
    def test_non_semantic_knobs_are_ignored(self):
        base = _tiny_options()
        assert (options_fingerprint(base)
                == options_fingerprint(_tiny_options(jobs=8))
                == options_fingerprint(_tiny_options(cache_dir="/x")))

    def test_semantic_knobs_invalidate(self):
        base = options_fingerprint(_tiny_options())
        assert options_fingerprint(_tiny_options(merge_strategy="lpt")) != base
        assert options_fingerprint(_tiny_options(coalesce_state=False)) != base
        assert options_fingerprint(
            CompilerOptions(config=dataclasses.replace(TINY, grid_x=3))) != base

    def test_version_salt_changes_key(self, monkeypatch):
        circuit = counter_circuit()
        before = compile_cache_key(circuit, _tiny_options())
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", "bumped/99")
        assert compile_cache_key(circuit, _tiny_options()) != before


# ----------------------------------------------------------------------
# Hit/miss semantics through compile_circuit.
# ----------------------------------------------------------------------

class TestCacheSemantics:
    def test_hit_is_bit_identical(self, tmp_path):
        opts = _tiny_options(cache_dir=str(tmp_path))
        cold = compile_circuit(counter_circuit(), opts)
        warm = compile_circuit(counter_circuit(), opts)
        assert cold.report.cache["status"] == "miss"
        assert warm.report.cache["status"] == "hit"
        assert serialize(warm.program) == serialize(cold.program)
        assert warm.report.vcpl == cold.report.vcpl
        assert warm.report.times.cache > 0.0

    def test_option_change_is_a_miss(self, tmp_path):
        compile_circuit(counter_circuit(),
                        _tiny_options(cache_dir=str(tmp_path)))
        again = compile_circuit(
            counter_circuit(),
            _tiny_options(cache_dir=str(tmp_path), coalesce_state=False))
        assert again.report.cache["status"] == "miss"

    def test_netlist_mutation_is_a_miss(self, tmp_path):
        opts = _tiny_options(cache_dir=str(tmp_path))
        compile_circuit(counter_circuit(), opts)
        mutated = compile_circuit(counter_circuit(limit=5), opts)
        assert mutated.report.cache["status"] == "miss"

    def test_version_bump_is_a_miss(self, tmp_path, monkeypatch):
        opts = _tiny_options(cache_dir=str(tmp_path))
        compile_circuit(counter_circuit(), opts)
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", "bumped/99")
        again = compile_circuit(counter_circuit(), opts)
        assert again.report.cache["status"] == "miss"

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        opts = _tiny_options(cache_dir=str(tmp_path))
        cold = compile_circuit(counter_circuit(), opts)
        cache = CompileCache(tmp_path)
        path = cache.path(compile_cache_key(counter_circuit(), opts))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # truncate mid-pickle
        recompiled = compile_circuit(counter_circuit(), opts)
        assert recompiled.report.cache["status"] == "miss"
        assert serialize(recompiled.program) == serialize(cold.program)
        # And garbage that is not pickle at all:
        path.write_bytes(b"not a pickle")
        stats = CompileCache(tmp_path)
        assert stats.get(path.stem) is None
        assert stats.stats.corrupt == 1
        assert not path.exists()   # bad entry was dropped

    def test_disabled_cache(self, tmp_path):
        result = compile_circuit(counter_circuit(), _tiny_options())
        assert result.report.cache is None
        assert cache_from_options(_tiny_options()) is None

    def test_unwritable_cache_dir_degrades(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        # cache_dir points *through* a regular file -> mkdir fails.
        opts = _tiny_options(cache_dir=str(blocker / "sub"))
        assert cache_from_options(opts) is None
        result = compile_circuit(counter_circuit(), opts)
        assert result.report.cache is None


# ----------------------------------------------------------------------
# Store-level behavior: atomicity and eviction.
# ----------------------------------------------------------------------

class TestCacheStore:
    def test_concurrent_writers_do_not_clobber(self, tmp_path):
        result = compile_circuit(counter_circuit(), _tiny_options())
        cache = CompileCache(tmp_path)
        key = "k" * 64
        errors: list[Exception] = []

        def writer():
            try:
                for _ in range(10):
                    assert cache.put(key, result)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Whoever won the last rename, the entry is complete and loadable.
        loaded = cache.get(key)
        assert loaded is not None
        assert serialize(loaded.program) == serialize(result.program)
        # No temp files leak.
        assert not list(tmp_path.glob(".wip-*"))

    def test_lru_eviction_is_size_capped(self, tmp_path):
        cache = CompileCache(tmp_path, max_bytes=1)
        result = compile_circuit(counter_circuit(), _tiny_options())
        cache.put("a" * 64, result)
        cache.put("b" * 64, result)
        # Cap of one byte: every store immediately evicts down to zero.
        assert cache.total_bytes() <= 1
        assert cache.stats.evictions >= 2
        assert cache.get("a" * 64) is None

    def test_eviction_prefers_least_recently_used(self, tmp_path):
        import os
        result = compile_circuit(counter_circuit(), _tiny_options())
        blob = len(pickle.dumps(result, pickle.HIGHEST_PROTOCOL))
        cache = CompileCache(tmp_path, max_bytes=2 * blob + blob // 2)
        cache.put("a" * 64, result)
        cache.put("b" * 64, result)
        # Backdate "b" so "a" is the most recently used entry.
        os.utime(cache.path("b" * 64), (1, 1))
        cache.put("c" * 64, result)   # over cap -> evict oldest ("b")
        assert cache.get("b" * 64) is None
        assert cache.get("a" * 64) is not None


# ----------------------------------------------------------------------
# Report plumbing.
# ----------------------------------------------------------------------

class TestReportSerialization:
    def test_as_dict_is_json_clean(self, tmp_path):
        opts = _tiny_options(cache_dir=str(tmp_path))
        report = compile_circuit(counter_circuit(), opts).report
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["name"] == "counter"
        assert payload["times"]["cache"] >= 0.0
        assert set(payload["times"]) >= {"opt", "lower", "parallelize",
                                         "custom", "schedule", "regalloc",
                                         "cache", "total"}
        assert payload["cache"]["status"] == "miss"
        assert payload["custom"]["instructions_before"] >= 0

    def test_phase_times_include_cache_in_total(self):
        from repro.compiler import PhaseTimes
        t = PhaseTimes(opt=1.0, cache=0.5)
        assert t.total == pytest.approx(1.5)
        assert t.as_dict()["cache"] == pytest.approx(0.5)
