"""Workload registry + paper-scale design tier tests.

Covers the three workload kinds end to end: builtin designs at named
scale tiers, external Verilog files ingested through the widened
frontend and run to ``$finish`` on the machine, and promoted
fuzz-corpus circuits with pinned state digests.  The manifest pins are
load-bearing here: these tests are what turns them into regression
checks.
"""

import os

import pytest

from repro.designs import DESIGNS, SCALES
from repro.machine.config import MachineConfig
from repro.machine.grid import Machine
from repro.netlist.interp import NetlistInterpreter
from repro.workloads import (DEFAULT_GRID, WorkloadError, build_workload,
                             load_workloads, run_workload,
                             verify_workload)
from repro.workloads.registry import grid_key

WORKLOADS = load_workloads()


class TestScaleTiers:
    def test_every_design_has_all_tiers(self):
        for info in DESIGNS.values():
            assert set(info.scales) == set(SCALES), info.name

    def test_small_tier_matches_historical_build(self):
        for info in DESIGNS.values():
            assert (info.build_at("small").fingerprint()
                    == info.build().fingerprint()), info.name

    def test_paper_tier_is_larger(self):
        # "Larger" = more circuit (ops + state bits) or a longer run
        # (jpeg's knob lengthens its serial decode - the paper's point
        # about that benchmark - without touching the datapath).
        def size(c):
            return (len(c.ops)
                    + sum(r.width for r in c.registers.values())
                    + sum(m.width * m.depth for m in c.memories.values()))
        for info in DESIGNS.values():
            grew = (size(info.build_at("paper"))
                    > size(info.build_at("small")))
            runs_longer = info.cycles_at("paper") > info.cycles_at("small")
            assert grew or runs_longer, info.name

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError, match="no scale"):
            DESIGNS["mm"].build_at("huge")

    def test_tier_budgets_are_driver_complete_mm(self):
        from repro.netlist.interp import run_circuit
        info = DESIGNS["mm"]
        for scale in SCALES:
            result = run_circuit(info.build_at(scale),
                                 info.cycles_at(scale))
            assert result.finished, scale


class TestRegistry:
    def test_manifest_is_populated(self):
        kinds = [w.kind for w in WORKLOADS.values()]
        assert kinds.count("builtin") == len(DESIGNS)
        assert kinds.count("verilog") >= 2
        assert kinds.count("corpus") >= 3

    def test_every_entry_is_pinned(self):
        for w in WORKLOADS.values():
            assert w.fingerprint, w.name
            assert grid_key(DEFAULT_GRID) in w.digests, w.name

    def test_pinned_fingerprints_reproduce(self):
        # Content identity: rebuilding every workload from its source
        # reference must reproduce the manifest's fingerprint exactly.
        for w in WORKLOADS.values():
            assert build_workload(w).fingerprint() == w.fingerprint, w.name

    def test_corpus_promotions_live_in_the_package(self):
        corpus = [w for w in WORKLOADS.values() if w.kind == "corpus"]
        assert len(corpus) >= 3
        pkg_dir = os.path.dirname(
            os.path.abspath(__import__("repro.workloads",
                                       fromlist=["registry"]).__file__))
        for w in corpus:
            assert os.path.exists(os.path.join(pkg_dir, w.source)), w.name

    def test_digest_pin_mismatch_is_detected(self):
        from dataclasses import replace
        w = replace(WORKLOADS["fuzz-1"],
                    digests={grid_key(DEFAULT_GRID): "0" * 64})
        run = run_workload(w, DEFAULT_GRID, "fast")
        assert run.digest_ok is False
        assert not run.ok
        with pytest.raises(WorkloadError, match="state digest mismatch"):
            verify_workload(w, engines=("fast",))

    def test_fingerprint_drift_is_detected(self):
        from dataclasses import replace
        w = replace(WORKLOADS["fuzz-1"], fingerprint="f" * 64)
        with pytest.raises(WorkloadError, match="fingerprint drifted"):
            verify_workload(w, engines=("fast",))


class TestCorpusWorkloads:
    """The promoted fuzz seeds stay pinned across every engine tier."""

    @pytest.mark.parametrize("name", [w.name for w in WORKLOADS.values()
                                      if w.kind == "corpus"])
    def test_promoted_seed_verifies_on_all_engines(self, name):
        runs = verify_workload(WORKLOADS[name],
                               engines=("strict", "fast", "codegen"))
        assert all(r.digest_ok for r in runs)


class TestVerilogWorkloads:
    """External .v designs ingest through the frontend and run to
    $finish on the machine, matching the golden interpreter."""

    @pytest.mark.parametrize("name", [w.name for w in WORKLOADS.values()
                                      if w.kind == "verilog"])
    def test_machine_matches_golden(self, name):
        workload = WORKLOADS[name]
        circuit = build_workload(workload)
        golden = NetlistInterpreter(circuit).run(workload.cycles)
        assert golden.finished

        from repro.compiler.driver import CompilerOptions, compile_circuit
        config = MachineConfig(grid_x=4, grid_y=4)
        compiled = compile_circuit(circuit, CompilerOptions(config=config))
        machine = Machine(compiled.program, config, engine="fast")
        result = machine.run(workload.cycles)
        assert result.finished
        assert result.vcycles == golden.cycles
        assert result.displays == golden.displays

    def test_packet_switch_pinned_digest(self):
        run = run_workload(WORKLOADS["packet-switch"], DEFAULT_GRID,
                           "fast")
        assert run.finished and run.digest_ok is True

    def test_uart_loopback_pinned_digest(self):
        run = run_workload(WORKLOADS["uart-loopback"], DEFAULT_GRID,
                           "fast")
        assert run.finished and run.digest_ok is True

    def test_packet_switch_displays(self):
        circuit = build_workload(WORKLOADS["packet-switch"])
        golden = NetlistInterpreter(circuit).run(100)
        assert golden.finished
        assert any("24 packets" in line for line in golden.displays)
