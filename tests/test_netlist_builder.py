"""Unit tests for the netlist builder and reference interpreter."""

import pytest

from repro.netlist import (
    CircuitBuilder,
    CircuitError,
    NetlistInterpreter,
    SimulationAssertionError,
    run_circuit,
)


def make_counter(limit=20, width=8):
    m = CircuitBuilder("counter")
    count = m.register("count", width)
    count.next = (count + 1).trunc(width)
    done = count == limit
    m.display(done, "done %d", count)
    m.finish(done)
    return m.build()


class TestCounter:
    def test_runs_to_finish(self):
        result = run_circuit(make_counter(), max_cycles=1000)
        assert result.finished
        assert result.cycles == 21  # finish observed when count == 20
        assert result.displays == ["done 20"]

    def test_max_cycles_cap(self):
        result = run_circuit(make_counter(limit=100), max_cycles=5)
        assert not result.finished
        assert result.cycles == 5


class TestOperators:
    def run_expr(self, build_fn, cycles=1):
        m = CircuitBuilder("expr")
        out = build_fn(m)
        m.output("out", out)
        interp = NetlistInterpreter(m.build())
        for _ in range(cycles):
            interp.step()
        return interp.peek_output("out")

    def test_add_masks_to_width(self):
        assert self.run_expr(
            lambda m: m.const(250, 8) + m.const(10, 8)) == 4

    def test_add_wide_keeps_carry(self):
        assert self.run_expr(
            lambda m: m.const(250, 8).add_wide(m.const(10, 8))) == 260

    def test_sub_wraps(self):
        assert self.run_expr(
            lambda m: m.const(3, 8) - m.const(5, 8)) == 254

    def test_mul_wide(self):
        assert self.run_expr(
            lambda m: m.const(200, 8).mul_wide(m.const(200, 8))) == 40000

    def test_bitwise(self):
        assert self.run_expr(
            lambda m: (m.const(0b1100, 4) & m.const(0b1010, 4))) == 0b1000
        assert self.run_expr(
            lambda m: (m.const(0b1100, 4) | m.const(0b1010, 4))) == 0b1110
        assert self.run_expr(
            lambda m: (m.const(0b1100, 4) ^ m.const(0b1010, 4))) == 0b0110
        assert self.run_expr(lambda m: ~m.const(0b1100, 4)) == 0b0011

    def test_comparisons(self):
        assert self.run_expr(lambda m: m.const(3, 8).ltu(5)) == 1
        assert self.run_expr(lambda m: m.const(5, 8).ltu(3)) == 0
        # signed: 0xFF as 8-bit signed is -1 < 1
        assert self.run_expr(lambda m: m.const(0xFF, 8).lts(1)) == 1
        assert self.run_expr(lambda m: m.const(1, 8).lts(m.const(0xFF, 8))) == 0
        assert self.run_expr(lambda m: m.const(7, 4) == m.const(7, 4)) == 1
        assert self.run_expr(lambda m: m.const(7, 4) != m.const(7, 4)) == 0

    def test_static_shifts(self):
        assert self.run_expr(lambda m: m.const(0b0011, 4) << 2) == 0b1100
        assert self.run_expr(lambda m: m.const(0b1100, 4) >> 2) == 0b0011
        assert self.run_expr(lambda m: m.const(0b1000, 4).ashr(2)) == 0b1110

    def test_dynamic_shifts(self):
        assert self.run_expr(
            lambda m: m.const(1, 8) << m.const(4, 3)) == 16
        assert self.run_expr(
            lambda m: m.const(128, 8) >> m.const(3, 3)) == 16

    def test_slice_and_cat(self):
        assert self.run_expr(lambda m: m.const(0xAB, 8).bits(4, 4)) == 0xA
        assert self.run_expr(
            lambda m: m.cat(m.const(0xB, 4), m.const(0xA, 4))) == 0xAB
        assert self.run_expr(lambda m: m.const(0b100, 3)[2]) == 1

    def test_zext_sext(self):
        assert self.run_expr(lambda m: m.const(0x8, 4).zext(8)) == 0x08
        assert self.run_expr(lambda m: m.const(0x8, 4).sext(8)) == 0xF8
        assert self.run_expr(lambda m: m.const(0x7, 4).sext(8)) == 0x07

    def test_mux(self):
        assert self.run_expr(
            lambda m: m.mux(m.const(1, 1), m.const(5, 8), m.const(9, 8))) == 9
        assert self.run_expr(
            lambda m: m.mux(m.const(0, 1), m.const(5, 8), m.const(9, 8))) == 5

    def test_select(self):
        for idx, expect in [(0, 11), (1, 22), (2, 33), (3, 44)]:
            got = self.run_expr(
                lambda m: m.select(m.const(idx, 2),
                                   [m.const(v, 8) for v in (11, 22, 33, 44)]))
            assert got == expect

    def test_reductions(self):
        assert self.run_expr(lambda m: m.const(0, 4).any()) == 0
        assert self.run_expr(lambda m: m.const(2, 4).any()) == 1
        assert self.run_expr(lambda m: m.const(0xF, 4).all()) == 1
        assert self.run_expr(lambda m: m.const(0x7, 4).all()) == 0
        assert self.run_expr(lambda m: m.const(0b0111, 4).parity()) == 1

    def test_signal_has_no_truth_value(self):
        m = CircuitBuilder("t")
        with pytest.raises(CircuitError):
            bool(m.const(1, 1))


class TestMemory:
    def test_write_then_read_next_cycle(self):
        m = CircuitBuilder("mem")
        mem = m.memory("ram", width=8, depth=16)
        cyc = m.register("cyc", 4)
        cyc.next = (cyc + 1).trunc(4)
        mem.write(cyc, (cyc + 1).zext(8), enable=m.const(1, 1))
        rd = mem.read(cyc)
        m.output("rd", rd)
        interp = NetlistInterpreter(m.build())
        interp.step()  # cycle 0: read addr 0 (still 0), write 1 to addr 0
        assert interp.peek_output("rd") == 0
        assert interp.peek_memory("ram", 0) == 1

    def test_read_sees_old_value_same_cycle(self):
        # RTL semantics: a read in the same cycle as a write observes the
        # pre-write contents.
        m = CircuitBuilder("mem")
        mem = m.memory("ram", width=8, depth=4, init=[7, 0, 0, 0])
        zero = m.const(0, 2)
        mem.write(zero, m.const(99, 8))
        m.output("rd", mem.read(zero))
        interp = NetlistInterpreter(m.build())
        interp.step()
        assert interp.peek_output("rd") == 7
        assert interp.peek_memory("ram", 0) == 99

    def test_memory_init(self):
        m = CircuitBuilder("mem")
        mem = m.memory("rom", width=8, depth=4, init=[1, 2, 3, 4])
        idx = m.register("idx", 2)
        idx.next = (idx + 1).trunc(2)
        m.output("rd", mem.read(idx))
        interp = NetlistInterpreter(m.build())
        got = []
        for _ in range(4):
            interp.step()
            got.append(interp.peek_output("rd"))
        assert got == [1, 2, 3, 4]


class TestEffects:
    def test_assertion_failure(self):
        m = CircuitBuilder("a")
        one = m.const(1, 1)
        m.check(one, m.const(0, 1), "always fails")
        with pytest.raises(SimulationAssertionError):
            run_circuit(m.build(), 2)

    def test_assertion_pass(self):
        m = CircuitBuilder("a")
        one = m.const(1, 1)
        m.check(one, one, "never fails")
        result = run_circuit(m.build(), 3)
        assert result.cycles == 3

    def test_display_formats(self):
        m = CircuitBuilder("d")
        one = m.const(1, 1)
        m.display(one, "v=%d x=%x b=%b pct=%%", m.const(255, 8),
                  m.const(255, 8), m.const(5, 3))
        m.finish(one)
        result = run_circuit(m.build(), 10)
        assert result.displays == ["v=255 x=ff b=101 pct=%"]


class TestInputs:
    def test_input_provider(self):
        m = CircuitBuilder("i")
        x = m.input("x", 8)
        acc = m.register("acc", 16)
        acc.next = (acc + x).trunc(16)
        circuit = m.build()
        interp = NetlistInterpreter(
            circuit, inputs=lambda cycle: {"x": cycle + 1})
        for _ in range(4):
            interp.step()
        assert interp.peek_register("acc") == 1 + 2 + 3 + 4


class TestValidation:
    def test_register_width_mismatch(self):
        m = CircuitBuilder("v")
        r = m.register("r", 8)
        with pytest.raises(CircuitError):
            r.next = m.const(0, 4)

    def test_duplicate_register(self):
        m = CircuitBuilder("v")
        m.register("r", 8)
        with pytest.raises(CircuitError):
            m.register("r", 8)

    def test_registers_hold_by_default(self):
        m = CircuitBuilder("v")
        m.register("r", 8, init=42)
        interp = NetlistInterpreter(m.build())
        interp.step()
        assert interp.peek_register("r") == 42
