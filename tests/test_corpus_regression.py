"""Seed-corpus regression: every checked-in corpus file under
``tests/corpus/`` must replay deterministically.

Clean entries (no recorded divergence) are swept against the *full*
oracle matrix - they are minimized circuits that once exercised
interesting compiler paths, so any new divergence is a real regression.
Entries recorded against a fault oracle must keep reproducing the same
divergence (same cycle, same signal), proving the detection and replay
machinery end to end.
"""

import glob
import os

import pytest

from repro.fuzz import load_entry, replay_entry

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 4


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_corpus_entry_replays(path):
    entry = load_entry(path)
    if entry.divergence is None:
        _, divergences = replay_entry(entry, matrix="full")
        assert not divergences, divergences[0].describe()
    else:
        _, divergences = replay_entry(entry)
        assert divergences, "recorded divergence did not reproduce"
        got = divergences[0]
        assert got.oracle == entry.divergence.oracle
        assert got.cycle == entry.divergence.cycle
        assert got.signal == entry.divergence.signal


def test_shard_seed_crosses_the_cut():
    """The seed minimized for the shard protocol must still issue
    boundary-crossing Sends at K=2 - otherwise its clean replay on the
    sharded oracles (via the full-matrix sweep above) proves nothing
    about the barrier exchange."""
    from repro.compiler import CompilerOptions, compile_circuit
    from repro.fuzz.oracle import FUZZ_CONFIG
    from repro.machine.shard import partition

    paths = [p for p in CORPUS_FILES if os.path.basename(p).startswith("fuzz_4-")]
    assert paths, "shard corpus seed (fuzz_4-*) is missing"
    entry = load_entry(paths[0])
    assert entry.divergence is None, "shard seed must be a clean entry"
    result = compile_circuit(entry.circuit,
                             CompilerOptions(config=FUZZ_CONFIG))
    plan = partition(result.program, FUZZ_CONFIG, 2)
    assert plan.boundary_sends() > 0
