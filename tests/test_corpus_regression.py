"""Seed-corpus regression: every checked-in corpus file under
``tests/corpus/`` must replay deterministically.

Clean entries (no recorded divergence) are swept against the *full*
oracle matrix - they are minimized circuits that once exercised
interesting compiler paths, so any new divergence is a real regression.
Entries recorded against a fault oracle must keep reproducing the same
divergence (same cycle, same signal), proving the detection and replay
machinery end to end.
"""

import glob
import os

import pytest

from repro.fuzz import load_entry, replay_entry

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 4


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_corpus_entry_replays(path):
    entry = load_entry(path)
    if entry.divergence is None:
        _, divergences = replay_entry(entry, matrix="full")
        assert not divergences, divergences[0].describe()
    else:
        _, divergences = replay_entry(entry)
        assert divergences, "recorded divergence did not reproduce"
        got = divergences[0]
        assert got.oracle == entry.divergence.oracle
        assert got.cycle == entry.divergence.cycle
        assert got.signal == entry.divergence.signal
