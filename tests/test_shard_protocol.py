"""Unit/property tests for the shard partitioner and the boundary codec.

The partitioner's invariants are what make the barrier exchange sound:
every Send whose endpoints land in different shards must appear in
exactly one outgoing channel (on the source shard) and exactly one
incoming channel (on the destination shard), in the same global rank
order on both sides; Sends within a shard must never leak into a
channel; and the foreign link-slot sets must cover every Send a shard
does *not* issue, so local collision checks stay globally exhaustive.
The codec tests pin the wire format the process transport ships.
"""

from __future__ import annotations

import random

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.fuzz.generator import GeneratorParams, generate
from repro.isa import instructions as isa
from repro.machine import MachineConfig
from repro.machine.shard import decode_payload, encode_payload, partition

CONFIG = MachineConfig(grid_x=8, grid_y=8)
FUZZ_CONFIG = MachineConfig(grid_x=3, grid_y=3, result_latency=6)


def _program(name="noc", config=CONFIG):
    return compile_circuit(DESIGNS[name].build(),
                           CompilerOptions(config=config)).program


def _all_sends(program):
    sends = []
    for cid in sorted(program.cores):
        for cycle, instr in enumerate(program.cores[cid].body):
            if isinstance(instr, isa.Send):
                sends.append((cycle, cid, instr.target, instr.rd))
    sends.sort()
    return sends


def _check_plan(program, config, n_shards):
    plan = partition(program, config, n_shards)
    sends = _all_sends(program)
    shard_of = plan.shard_of

    # Rows: contiguous bands covering the grid exactly once.
    all_rows = [r for spec in plan.specs for r in spec.rows]
    assert all_rows == list(range(config.grid_y))
    for spec in plan.specs:
        assert list(spec.rows) == list(
            range(spec.rows[0], spec.rows[0] + len(spec.rows)))
        assert all(shard_of[cid] == spec.shard_id
                   for cid in spec.core_ids)

    # Every send appears exactly once: local iff endpoints co-shard,
    # else in exactly one out channel AND the matching in channel.
    seen: dict[tuple[int, int], str] = {}
    for spec in plan.specs:
        for ref in spec.local_sends:
            assert shard_of[ref.src] == shard_of[ref.dst] == spec.shard_id
            assert (ref.cycle, ref.src) not in seen
            seen[(ref.cycle, ref.src)] = "local"
        for dst_shard, refs in spec.out_channels.items():
            assert dst_shard != spec.shard_id, "self-channel leak"
            for ref in refs:
                assert shard_of[ref.src] == spec.shard_id
                assert shard_of[ref.dst] == dst_shard
                assert (ref.cycle, ref.src) not in seen
                seen[(ref.cycle, ref.src)] = f"out:{spec.shard_id}->{dst_shard}"
    assert set(seen) == {(cycle, src) for cycle, src, _t, _rd in sends}

    # Both directions agree channel for channel, ref for ref.
    for spec in plan.specs:
        for dst_shard, refs in spec.out_channels.items():
            assert plan.specs[dst_shard].in_channels[spec.shard_id] == refs
        for src_shard, refs in spec.in_channels.items():
            assert plan.specs[src_shard].out_channels[spec.shard_id] == refs

    # Channels are rank-sorted, ranks strictly increasing and unique
    # in global (cycle, src) order.
    ranks = {}
    for spec in plan.specs:
        for refs in (spec.local_sends, *spec.out_channels.values()):
            assert [r.rank for r in refs] == sorted(r.rank for r in refs)
            for ref in refs:
                ranks[ref.rank] = (ref.cycle, ref.src)
    assert sorted(ranks) == list(range(len(sends)))
    assert [ranks[r] for r in sorted(ranks)] == sorted(ranks.values())

    # Foreign slots: exactly the union of other shards' send slots.
    n_slots_total = {s: 0 for s in range(n_shards)}
    for cycle, src, _t, _rd in sends:
        route = config.route(src, _t)
        n = len(route) + 1  # hop slots + ejection slot
        for s in range(n_shards):
            if s != shard_of[src]:
                n_slots_total[s] += n
    for spec in plan.specs:
        assert len(spec.foreign_slots) == n_slots_total[spec.shard_id]
    return plan


@pytest.mark.parametrize("name", ["noc", "mm", "bc"])
@pytest.mark.parametrize("n_shards", [2, 3, 4, 8])
def test_partition_properties_designs(name, n_shards):
    _check_plan(_program(name), CONFIG, n_shards)


@pytest.mark.parametrize("seed", range(6))
def test_partition_properties_random_circuits(seed):
    """Fuzz-generated circuits on the 3x3 fuzz grid, K=2 and K=3."""
    circuit = generate(seed, GeneratorParams())
    program = compile_circuit(
        circuit, CompilerOptions(config=FUZZ_CONFIG)).program
    for n_shards in (2, 3):
        _check_plan(program, FUZZ_CONFIG, n_shards)


def test_uneven_bands():
    """grid_y=8 into K=3 splits 3+3+2, still contiguous and exhaustive."""
    plan = _check_plan(_program(), CONFIG, 3)
    assert [len(s.rows) for s in plan.specs] == [3, 3, 2]


def test_boundary_send_census():
    """Sanity: a real design actually crosses every cut (the equivalence
    suite would be vacuous otherwise)."""
    program = _program("noc")
    for n_shards in (2, 4):
        plan = partition(program, CONFIG, n_shards)
        assert plan.boundary_sends() > 0
        for spec in plan.specs:
            assert spec.out_channels or spec.in_channels or \
                n_shards == 1


def test_invalid_shard_counts():
    program = _program()
    with pytest.raises(ValueError, match=r"shards must be in \[1"):
        partition(program, CONFIG, 0)
    with pytest.raises(ValueError, match=r"shards must be in \[1"):
        partition(program, CONFIG, CONFIG.grid_y + 1)
    with pytest.raises(ValueError, match="different grid"):
        partition(program, MachineConfig(grid_x=4, grid_y=4), 2)


class TestPayloadCodec:
    def test_round_trip_randomized(self):
        rng = random.Random(1234)
        for _ in range(200):
            values = [rng.randrange(0, 1 << 16)
                      for _ in range(rng.randrange(0, 64))]
            data = encode_payload(values)
            assert len(data) == 2 * len(values)
            assert decode_payload(data) == values

    def test_masks_to_16_bits(self):
        assert decode_payload(encode_payload([0x1FFFF, -1])) == \
            [0xFFFF, 0xFFFF]

    def test_empty(self):
        assert encode_payload([]) == b""
        assert decode_payload(b"") == []

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError, match="odd length"):
            decode_payload(b"\x01\x02\x03")

    def test_little_endian_wire_format(self):
        assert encode_payload([0x0102]) == b"\x02\x01"
