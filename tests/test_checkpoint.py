"""The checkpoint/restore subsystem (``repro.checkpoint``).

Covers the wire format (round-trip, determinism, torn/corrupt/mismatch
rejection), the snapshot store (atomic publish, prune, recovery report),
mid-Vcycle capture with messages in flight, fast-path trust restore,
profiler merge across resume segments, waveform continuity, the long-run
driver, the schema document, and the ``repro run`` CLI.  The full
designs x engines bit-identity sweep lives in
``tests/test_checkpoint_equivalence.py``.
"""

from __future__ import annotations

import functools
import io
import json

import pytest

from repro import checkpoint as ck
from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import Machine, MachineConfig
from repro.machine.waveform import WaveformCollector, trace_map_for
from repro.obs import Profiler

CONFIG = MachineConfig(grid_x=8, grid_y=8)


@functools.lru_cache(maxsize=None)
def _compiled(name: str):
    return compile_circuit(DESIGNS[name].build(),
                           CompilerOptions(config=CONFIG))


def _budget(name: str) -> int:
    return max(64, DESIGNS[name].cycles + 300)


def _machine(name: str, engine: str = "strict", **kw) -> Machine:
    return Machine(_compiled(name).program, CONFIG, engine=engine, **kw)


def _snap(machine: Machine) -> ck.Snapshot:
    """Capture through the full wire format (encode -> decode)."""
    return ck.decode_snapshot(ck.encode_snapshot(ck.capture(machine)))


# ---------------------------------------------------------------------------
# Wire format.
# ---------------------------------------------------------------------------

def test_format_round_trip_and_header():
    machine = _machine("mm")
    machine.run(20)
    blob = ck.encode_snapshot(ck.capture(machine))
    snap = ck.decode_snapshot(blob)
    assert snap.vcycle == 20
    assert snap.engine == "strict"
    assert snap.design == machine.program.name
    assert snap.program_sha256 == ck.program_fingerprint(machine.program)
    assert snap.header["format"] == ck.FORMAT
    assert blob.startswith(ck.MAGIC)


def test_format_is_deterministic():
    def capture_at(v):
        machine = _machine("mm")
        machine.run(v)
        return ck.encode_snapshot(ck.capture(machine))

    assert capture_at(20) == capture_at(20)
    assert capture_at(20) != capture_at(21)


@pytest.mark.parametrize("mutate", [
    lambda b: b[:len(b) // 2],                       # truncated payload
    lambda b: b[:40],                                # truncated header
    lambda b: b"NOTCKPT!" + b[8:],                   # bad magic
    lambda b: b[:-30] + bytes(30),                   # corrupted tail
    lambda b: b.replace(b"repro-checkpoint/v1",
                        b"repro-checkpoint/v9", 1),  # future version
])
def test_format_rejects_torn_and_corrupt(mutate):
    machine = _machine("mm")
    machine.run(20)
    blob = ck.encode_snapshot(ck.capture(machine))
    with pytest.raises(ck.SnapshotError):
        ck.decode_snapshot(mutate(blob))


def test_snapshot_matches_schema():
    with open("docs/checkpoint.schema.json") as f:
        schema = json.load(f)
    from repro.obs.export import validate_profile
    machine = _machine("mc", engine="fast",
                       profiler=Profiler())
    machine.run(30)
    snap = _snap(machine)
    errors = validate_profile(
        {"header": snap.header, "payload": snap.payload}, schema)
    assert errors == []
    assert "profiler" in snap.payload["state"]


# ---------------------------------------------------------------------------
# Restore guards.
# ---------------------------------------------------------------------------

def test_restore_rejects_wrong_program():
    machine = _machine("mm")
    machine.run(20)
    snap = _snap(machine)
    with pytest.raises(ck.SnapshotError, match="program"):
        ck.restore(snap, program=_compiled("mc").program)


def test_restore_rejects_wrong_config():
    machine = _machine("mm")
    machine.run(20)
    snap = _snap(machine)
    with pytest.raises(ck.SnapshotError, match="MachineConfig"):
        ck.restore(snap, config=MachineConfig(grid_x=8, grid_y=8,
                                              result_latency=9))


def test_restore_is_self_contained():
    """No program/config arguments: the embedded copies suffice."""
    machine = _machine("mm")
    ref = _machine("mm")
    budget = _budget("mm")
    ref_r = ref.run(budget)
    machine.run(20)
    restored = ck.restore(_snap(machine))
    assert restored.run(budget).counters == ref_r.counters


# ---------------------------------------------------------------------------
# Mid-Vcycle capture: messages in flight, pending writebacks.
# ---------------------------------------------------------------------------

def _pause_with_traffic(machine: Machine, limit: int = 200_000) -> bool:
    """Advance event-by-event into a Vcycle and pause at a point where
    NoC messages are in flight (received-this-Vcycle queue entries)."""
    for _ in range(limit):
        done = machine.step_events(1)
        if machine._event_pos and any(
                core.queue for core in machine.cores.values()):
            return True
        if done and machine.finished:
            return False
    return False


@pytest.mark.parametrize("engine", ["strict", "permissive"])
def test_mid_vcycle_snapshot_with_inflight_messages(engine):
    budget = _budget("noc")
    ref = _machine("noc", engine)
    ref_r = ref.run(budget)

    machine = _machine("noc", engine)
    machine.run(30)
    assert _pause_with_traffic(machine), "no NoC traffic found to pause in"
    assert machine._event_pos > 0
    snap = _snap(machine)
    state = snap.payload["state"]
    assert state["event_pos"] > 0
    assert any(core["queue"] for core in state["cores"].values())

    restored = ck.restore(snap)
    r = restored.run(budget)
    assert r.vcycles == ref_r.vcycles
    assert r.displays == ref_r.displays
    assert r.counters == ref_r.counters
    assert r.cache == ref_r.cache
    for cid, core in ref.cores.items():
        assert restored.cores[cid].regs == core.regs
        assert restored.cores[cid].scratch == core.scratch


def test_step_events_refuses_trusted_fastpath():
    machine = _machine("mc", engine="fast")
    budget = _budget("mc")
    while not machine._trusted:
        assert not machine.finished and \
            machine.counters.vcycles < budget, "fast path never trusted"
        machine.step_vcycle()
    with pytest.raises(ValueError):
        machine.step_events(1)


def test_fastpath_trust_restored_without_reverification():
    machine = _machine("mc", engine="fast")
    budget = _budget("mc")
    while not machine._trusted:
        machine.step_vcycle()
    snap = _snap(machine)
    assert snap.payload["state"]["fastpath"]["trusted"] is True

    restored = ck.restore(snap)
    assert restored._trusted is True          # no strict re-verify burned
    ref = _machine("mc", engine="fast")
    ref_r = ref.run(budget)
    assert restored.run(budget).counters == ref_r.counters


def test_restored_engine_can_differ():
    """Machine state is engine-independent: a strict snapshot finishes
    identically on the fast engine (at a Vcycle boundary)."""
    budget = _budget("mc")
    ref_r = _machine("mc", "strict").run(budget)
    machine = _machine("mc", "strict")
    machine.run(30)
    restored = ck.restore(_snap(machine), engine="fast")
    r = restored.run(budget)
    assert r.counters == ref_r.counters
    assert r.displays == ref_r.displays


# ---------------------------------------------------------------------------
# Profiler merge across resume segments.
# ---------------------------------------------------------------------------

def test_profiler_counters_merge_across_resume():
    budget = _budget("mc")
    ref_prof = Profiler()
    ref = _machine("mc", "strict", profiler=ref_prof)
    ref.run(budget)

    prof1 = Profiler()
    machine = _machine("mc", "strict", profiler=prof1)
    machine.run(30)
    machine.step_events(5)  # split a Vcycle across the snapshot too
    prof2 = Profiler()
    restored = ck.restore(_snap(machine), profiler=prof2)
    restored.run(budget)

    assert prof2.state_dict() == ref_prof.state_dict()
    assert prof2.totals() == ref_prof.totals()


# ---------------------------------------------------------------------------
# Waveform continuity.
# ---------------------------------------------------------------------------

def test_waveform_resume_appends_without_duplicates():
    budget = _budget("mc")
    probes = trace_map_for(_compiled("mc"))
    assert probes, "mc should expose traceable registers"

    ref = _machine("mc")
    ref_coll = WaveformCollector(ref, probes)
    ref_coll.run(budget)
    ref_vcd = ref_coll.vcd_text()

    machine = _machine("mc")
    coll1 = WaveformCollector(machine, probes)
    coll1.sample()
    while not machine.finished and machine.counters.vcycles < 30:
        machine.step_vcycle()
        coll1.sample()
    snap = _snap(machine)

    restored = ck.restore(snap)
    coll2 = WaveformCollector.resumed_from(restored, probes)
    coll2.sample()  # boundary Vcycle: must NOT re-emit
    while not restored.finished and restored.counters.vcycles < budget:
        restored.step_vcycle()
        coll2.sample()

    buf = io.StringIO()
    coll1.write_vcd(buf)
    coll2.write_vcd(buf, header=False)
    assert buf.getvalue() == ref_vcd


# ---------------------------------------------------------------------------
# Store: atomic publish, prune, recovery report.
# ---------------------------------------------------------------------------

def _blob_at(vcycle: int) -> bytes:
    machine = _machine("mm")
    machine.run(vcycle)
    return ck.encode_snapshot(ck.capture(machine))


def test_store_publish_prune_latest(tmp_path):
    store = ck.CheckpointStore(tmp_path / "ckpts", keep=3)
    for v in (5, 10, 15, 20, 25):
        store.publish(_blob_at(v))
    names = [p.name for p in store.snapshot_paths()]
    assert names == ["ckpt-000000000015.ckpt", "ckpt-000000000020.ckpt",
                     "ckpt-000000000025.ckpt"]
    found = store.latest()
    assert found is not None and found[1].vcycle == 25


def test_store_reports_torn_and_mismatched(tmp_path):
    store = ck.CheckpointStore(tmp_path, keep=0)
    store.publish(_blob_at(5))
    good = _blob_at(10)
    store.publish(good)
    # Newest generation is torn (as if the writer died mid-write and
    # rename never happened but bytes leaked anyway).
    store.path_for(15).write_bytes(_blob_at(15)[:-20])

    valid, rejected = store.scan()
    assert [s.vcycle for _, s in valid] == [10, 5]
    assert len(rejected) == 1
    assert rejected[0].path == store.path_for(15)
    assert "torn" in rejected[0].reason

    # Program-fingerprint filter rejects everything from other programs.
    valid, rejected = store.scan(program_sha256="0" * 64)
    assert valid == []
    assert len(rejected) == 3
    assert any("fingerprint" in r.reason for r in rejected)

    found = store.latest()
    assert found is not None and found[1].vcycle == 10


def test_store_prune_removes_stale_tempfiles(tmp_path):
    store = ck.CheckpointStore(tmp_path, keep=2)
    (tmp_path / ".wip-ckpt-000000000005.ckpt-999").write_bytes(b"junk")
    store.publish(_blob_at(5))
    assert list(tmp_path.glob(".wip-*")) == []
    assert len(store.snapshot_paths()) == 1


# ---------------------------------------------------------------------------
# Driver: chunked runs, resume, rejection reporting.
# ---------------------------------------------------------------------------

def test_driver_interrupt_and_resume_matches_clean_run(tmp_path):
    program = _compiled("mc").program
    budget = _budget("mc")
    clean = ck.run_with_checkpoints(program, budget, config=CONFIG,
                                    engine="fast")
    assert clean.result.finished and clean.resumed_from is None

    store = ck.CheckpointStore(tmp_path, keep=3)
    first = ck.run_with_checkpoints(
        program, 25, config=CONFIG, engine="fast", store=store,
        checkpoint_every=10)
    assert [p.name for p in first.published] == \
        ["ckpt-000000000010.ckpt", "ckpt-000000000020.ckpt"]

    second = ck.run_with_checkpoints(
        program, budget, config=CONFIG, engine="fast", store=store,
        checkpoint_every=10, resume=True)
    assert second.resumed_from == 20
    assert second.rejected == []
    assert second.result.vcycles == clean.result.vcycles
    assert second.result.displays == clean.result.displays
    assert second.result.counters == clean.result.counters
    assert second.result.cache == clean.result.cache


def test_driver_discards_bad_newest_and_reports(tmp_path):
    program = _compiled("mc").program
    budget = _budget("mc")
    clean = ck.run_with_checkpoints(program, budget, config=CONFIG)

    store = ck.CheckpointStore(tmp_path, keep=0)
    ck.run_with_checkpoints(program, 25, config=CONFIG, store=store,
                            checkpoint_every=10)
    # A torn newest generation and a snapshot from a different program.
    store.path_for(30).write_bytes(b"RPROCKPTgarbage")
    other = _machine("mm")
    other.run(35)
    store.path_for(35).write_bytes(ck.encode_snapshot(ck.capture(other)))

    resumed = ck.run_with_checkpoints(program, budget, config=CONFIG,
                                      store=store, resume=True)
    assert resumed.resumed_from == 20
    reasons = {r.path.name: r.reason for r in resumed.rejected}
    assert set(reasons) == {"ckpt-000000000030.ckpt",
                            "ckpt-000000000035.ckpt"}
    assert resumed.result.counters == clean.result.counters


def test_driver_fresh_start_when_store_empty(tmp_path):
    program = _compiled("mm").program
    run = ck.run_with_checkpoints(
        program, _budget("mm"), config=CONFIG,
        store=ck.CheckpointStore(tmp_path), resume=True)
    assert run.resumed_from is None and run.result.finished


def test_driver_on_start_hook_sees_resume_flag(tmp_path):
    program = _compiled("mm").program
    store = ck.CheckpointStore(tmp_path)
    seen = []
    ck.run_with_checkpoints(program, 10, config=CONFIG, store=store,
                            checkpoint_every=5,
                            on_start=lambda m, r: seen.append(r))
    ck.run_with_checkpoints(program, 20, config=CONFIG, store=store,
                            resume=True,
                            on_start=lambda m, r: seen.append(r))
    assert seen == [False, True]


# ---------------------------------------------------------------------------
# CLI: repro run --checkpoint-every/--resume/--json.
# ---------------------------------------------------------------------------

def _cli_run(capsys, *extra) -> dict:
    from repro.cli import main
    args = ["run", "--design", "mc", "--engine", "fast", "--no-cache",
            "--grid", "8", "8", "--json", *extra]
    assert main(args) == 0
    return json.loads(capsys.readouterr().out)


def test_cli_run_checkpoint_resume_matches_clean(tmp_path, capsys):
    clean = _cli_run(capsys)
    ckdir = str(tmp_path / "ckpts")
    partial = _cli_run(capsys, "--checkpoint-dir", ckdir,
                       "--checkpoint-every", "10", "--cycles", "25")
    assert partial["finished"] is False
    resumed = _cli_run(capsys, "--checkpoint-dir", ckdir,
                       "--checkpoint-every", "10", "--resume")
    assert resumed.pop("resumed_from") == 20
    clean.pop("resumed_from")
    assert resumed == clean


def test_cli_run_flags_require_checkpoint_dir(capsys):
    from repro.cli import main
    assert main(["run", "--design", "mm", "--resume"]) == 2
    assert main(["run"]) == 2
