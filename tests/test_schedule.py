"""Unit tests for the scheduler: hazards, NoC reservations, epilogue
placement, and current/next coalescing."""

import pytest

from repro import isa
from repro.compiler.lir import Mov, PLocalStore
from repro.compiler.lower import CompilerError
from repro.compiler.schedule import schedule
from repro.isa.program import ExceptionTable, Process, ProgramImage
from repro.machine import MachineConfig

CONFIG = MachineConfig(grid_x=2, grid_y=2, result_latency=6)


def make_image(processes, receives=None):
    return ProgramImage("t", {p.pid: p for p in processes},
                        ExceptionTable(),
                        receive_regs=receives or {})


class TestHazardSpacing:
    def test_dependent_instructions_spaced_by_latency(self):
        body = [
            isa.Alu("ADD", "t1", "a", "b"),
            isa.Alu("ADD", "t2", "t1", "b"),
        ]
        proc = Process(0, body=body, reg_init={"a": 1, "b": 2})
        sch = schedule(make_image([proc]), CONFIG)
        times = {type(i).__name__ + str(n): t
                 for n, (t, i) in enumerate(sch.cores[0].items)}
        issue = sorted(t for t, _ in sch.cores[0].items)
        assert issue[1] - issue[0] >= CONFIG.result_latency

    def test_independent_instructions_pack(self):
        body = [
            isa.Alu("ADD", f"t{k}", "a", "b") for k in range(6)
        ]
        proc = Process(0, body=body, reg_init={"a": 1, "b": 2})
        sch = schedule(make_image([proc]), CONFIG)
        issues = sorted(t for t, _ in sch.cores[0].items)
        assert issues == list(range(6))  # back-to-back

    def test_carry_chain_fast_forwarding(self):
        body = [
            isa.SetCarry(0),
            isa.AddCarry("lo", "a", "b"),
            isa.AddCarry("hi", "c", "d"),
        ]
        proc = Process(0, body=body,
                       reg_init={"a": 1, "b": 2, "c": 3, "d": 4})
        sch = schedule(make_image([proc]), CONFIG)
        issues = sorted(t for t, _ in sch.cores[0].items)
        # Carry forwards at carry_latency (1), not result_latency.
        assert issues[2] - issues[1] == CONFIG.carry_latency

    def test_predicated_store_occupies_two_slots(self):
        body = [
            PLocalStore("v", "base", 0, "p"),
            isa.Alu("ADD", "t", "v", "v"),
        ]
        proc = Process(0, body=body,
                       reg_init={"v": 1, "base": 0, "p": 1})
        sch = schedule(make_image([proc]), CONFIG)
        items = sorted(sch.cores[0].items)
        assert items[1][0] - items[0][0] >= 2


class TestCoalescing:
    def test_commit_mov_dissolved(self):
        body = [
            isa.Alu("ADD", "nxt", "cur", "one"),
            Mov("cur", "nxt"),
        ]
        proc = Process(0, body=body, reg_init={"cur": 0, "one": 1})
        sch = schedule(make_image([proc]), CONFIG)
        instrs = [i for _, i in sch.cores[0].items]
        assert len(instrs) == 1            # Mov coalesced away
        assert sch.cores[0].rename == {"nxt": "cur"}

    def test_war_reader_ordered_before_writer(self):
        # reader consumes the OLD cur; the renamed writer must come later.
        body = [
            isa.Alu("ADD", "nxt", "cur", "one"),
            isa.Alu("XOR", "obs", "cur", "one"),  # old-value reader
            Mov("cur", "nxt"),
        ]
        proc = Process(0, body=body, reg_init={"cur": 5, "one": 1})
        sch = schedule(make_image([proc]), CONFIG)
        rename = sch.cores[0].rename
        by_kind = {}
        for t, i in sch.cores[0].items:
            rd = getattr(i, "rd", None)
            by_kind[rename.get(rd, rd)] = t
        # writer (renamed to cur) issues after the XOR reader
        assert by_kind["cur"] > by_kind["obs"]

    def test_mov_from_constant_survives(self):
        body = [Mov("cur", "$c0001")]
        proc = Process(0, body=body,
                       reg_init={"cur": 0, "$c0001": 1})
        sch = schedule(make_image([proc]), CONFIG)
        instrs = [i for _, i in sch.cores[0].items]
        assert isinstance(instrs[0], Mov)  # cannot rename a constant

    def test_swap_cycle_falls_back_to_movs(self):
        # An instruction reading both old cur and new nxt would deadlock
        # under renaming; the core must fall back to explicit Movs.
        body = [
            isa.Alu("ADD", "nxt", "cur", "one"),
            isa.Alu("XOR", "obs", "cur", "nxt"),  # reads old AND new
            Mov("cur", "nxt"),
        ]
        proc = Process(0, body=body, reg_init={"cur": 3, "one": 1})
        sch = schedule(make_image([proc]), CONFIG)  # must not raise
        assert sch.cores[0].rename == {}


class TestNoC:
    def test_send_creates_epilogue_slot(self):
        p0 = Process(0, body=[isa.Send(1, "r", "v")], reg_init={"v": 7})
        p1 = Process(1, body=[isa.Nop()], reg_init={"r": 0})
        sch = schedule(make_image([p0, p1], {1: {"r"}}), CONFIG)
        target = sch.cores[sch.placement[1]]
        assert target.epilogue_length == 1
        assert sch.vcpl >= CONFIG.route_latency(0, 1)

    def test_ejection_port_serializes_arrivals(self):
        # Two cores send to the same target at the same time: the
        # single ejection port forces distinct arrival cycles.
        p0 = Process(0, body=[isa.Send(2, "r0", "v")], reg_init={"v": 1})
        p1 = Process(1, body=[isa.Send(2, "r1", "v")], reg_init={"v": 2})
        p2 = Process(2, body=[isa.Nop()], reg_init={"r0": 0, "r1": 0})
        sch = schedule(make_image([p0, p1, p2], {2: {"r0", "r1"}}),
                       CONFIG)
        assert sch.send_count == 2
        assert sch.cores[sch.placement[2]].epilogue_length == 2

    def test_many_sends_from_one_core_serialize(self):
        body = [isa.Send(1, f"r{k}", "v") for k in range(5)]
        p0 = Process(0, body=body, reg_init={"v": 9})
        p1 = Process(1, body=[isa.Nop()],
                     reg_init={f"r{k}": 0 for k in range(5)})
        sch = schedule(make_image([p0, p1],
                                  {1: {f"r{k}" for k in range(5)}}),
                       CONFIG)
        issues = sorted(t for t, i in sch.cores[sch.placement[0]].items
                        if isinstance(i, isa.Send))
        assert len(set(issues)) == 5  # one per cycle at most


class TestLimits:
    def test_too_many_processes(self):
        procs = [Process(i, body=[isa.Nop()]) for i in range(5)]
        with pytest.raises(CompilerError):
            schedule(make_image(procs), CONFIG)

    def test_vcpl_covers_drain(self):
        body = [isa.Alu("ADD", "t", "a", "a")]
        proc = Process(0, body=body, reg_init={"a": 1})
        sch = schedule(make_image([proc]), CONFIG)
        assert sch.vcpl >= CONFIG.result_latency
