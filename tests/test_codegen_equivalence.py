"""Codegen engine vs strict: bit-identity, trust, caching, checkpoints.

The codegen engine's contract is the fast engine's contract taken one
step further: the per-core schedules are lowered to specialized Python
source (register-slot locals, folded constants, no dispatch), exec'd as
a module, and - once verified against one strict Vcycle - trusted for
the rest of the run.  None of that may change anything observable.
This file enforces bit-identity over the whole design registry, that
the trusted kernel actually runs (no vacuous pass), that the exec
module cache skips re-emission on warm starts, and that
checkpoint/restore re-binds kernels without losing state.
"""

from __future__ import annotations

import functools

import pytest

from repro import checkpoint as ck
from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import Machine, MachineConfig
from repro.machine import codegen as cg
from repro.obs import Profiler

CONFIG = MachineConfig(grid_x=8, grid_y=8)

ALL_DESIGNS = sorted(DESIGNS)


@functools.lru_cache(maxsize=None)
def _program(name: str):
    options = CompilerOptions(config=CONFIG)
    return compile_circuit(DESIGNS[name].build(), options).program


def _budget(name: str) -> int:
    return max(64, DESIGNS[name].cycles + 300)


def _assert_same(strict_m, strict_r, other_m, other_r):
    assert other_r.vcycles == strict_r.vcycles
    assert other_r.finished == strict_r.finished
    assert other_r.displays == strict_r.displays
    assert other_r.counters == strict_r.counters
    assert other_r.cache == strict_r.cache
    for cid, core in strict_m.cores.items():
        other_core = other_m.cores[cid]
        assert other_core.regs == core.regs, f"core {cid} registers"
        assert other_core.scratch == core.scratch, f"core {cid} scratch"


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_codegen_bit_identical(name):
    budget = _budget(name)
    strict_m = Machine(_program(name), CONFIG, engine="strict")
    strict_r = strict_m.run(budget)
    cg_m = Machine(_program(name), CONFIG, engine="codegen")
    cg_r = cg_m.run(budget)
    _assert_same(strict_m, strict_r, cg_m, cg_r)


def test_codegen_bit_identical_without_verification():
    """``fastpath_verify_vcycles=0`` trusts the emitted kernel from the
    first Vcycle - the strongest differential check of the emitter, with
    no strict Vcycle to paper over a miscompiled schedule."""
    config = MachineConfig(grid_x=8, grid_y=8, fastpath_verify_vcycles=0)
    for name in ("mc", "bc"):
        budget = _budget(name)
        strict_m = Machine(_program(name), CONFIG, engine="strict")
        strict_r = strict_m.run(budget)
        cg_m = Machine(_program(name), config, engine="codegen")
        cg_r = cg_m.run(budget)
        _assert_same(strict_m, strict_r, cg_m, cg_r)


def test_codegen_engine_actually_engages():
    """Guards against the equivalence tests passing vacuously: the
    dispatcher must hand Vcycles to the trusted generated kernel (mc
    runs long enough and is display-quiet mid-run)."""
    machine = Machine(_program("mc"), CONFIG, engine="codegen")
    budget = _budget("mc")
    trusted = 0
    while not machine.finished and machine.counters.vcycles < budget:
        if machine._trusted:
            trusted += 1
        machine.step_vcycle()
    assert trusted > 0


def test_codegen_checkpoint_resume_bit_identical():
    """Snapshot mid-run under codegen, restore into a fresh machine (the
    kernel is re-bound from the exec-module cache, not re-verified), and
    the continued run must match an uninterrupted profiled run."""
    name = "mc"
    budget = _budget(name)

    ref_profiler = Profiler()
    ref_m = Machine(_program(name), CONFIG, engine="codegen",
                    profiler=ref_profiler)
    ref_r = ref_m.run(budget)

    profiler = Profiler()
    machine = Machine(_program(name), CONFIG, engine="codegen",
                      profiler=profiler)
    machine.run(max(1, ref_r.vcycles // 2))
    snapshot = ck.decode_snapshot(ck.encode_snapshot(ck.capture(machine)))
    resumed_profiler = Profiler()
    restored = ck.restore(snapshot, program=_program(name), config=CONFIG,
                          profiler=resumed_profiler)
    assert restored.engine == "codegen"
    result = restored.run(budget)

    _assert_same(ref_m, ref_r, restored, result)
    assert resumed_profiler.totals() == ref_profiler.totals()
    assert resumed_profiler.state_dict() == ref_profiler.state_dict()


def test_codegen_source_cache_warm_start(tmp_path, monkeypatch):
    """A warm disk cache skips source re-emission entirely: the second
    cold machine (in-memory memo cleared) execs the cached source and
    still produces bit-identical results."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    monkeypatch.setattr(cg, "_MEMO", {})
    monkeypatch.setattr(cg, "_KEYS", {})

    name = "jpeg"
    budget = _budget(name)
    before = cg.EMISSIONS
    cold_m = Machine(_program(name), CONFIG, engine="codegen")
    cold_r = cold_m.run(budget)
    assert cg.EMISSIONS == before + 1
    assert list(tmp_path.glob("*.py")), "emitted source not cached"

    # Fresh process simulation: drop the in-memory memo so the module
    # must come back through the disk cache, not a new emission.
    monkeypatch.setattr(cg, "_MEMO", {})
    monkeypatch.setattr(cg, "_KEYS", {})
    warm_m = Machine(_program(name), CONFIG, engine="codegen")
    warm_r = warm_m.run(budget)
    assert cg.EMISSIONS == before + 1, "warm start re-emitted source"
    _assert_same(cold_m, cold_r, warm_m, warm_r)


def test_codegen_cache_can_be_disabled(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", "off")
    monkeypatch.setattr(cg, "_MEMO", {})
    monkeypatch.setattr(cg, "_KEYS", {})
    machine = Machine(_program("jpeg"), CONFIG, engine="codegen")
    machine.run(_budget("jpeg"))
    assert not list(tmp_path.glob("*.py"))
