"""Unit and property tests for the Manticore ISA."""

import pytest
from hypothesis import given, strategies as st

from repro import isa
from repro.isa import encoding
from repro.isa.program import ExceptionTable, FinishAction, Process, ProgramImage
from repro.isa.semantics import eval_alu, eval_custom, to_signed16


class TestAluSemantics:
    @pytest.mark.parametrize("op,a,b,expect", [
        ("ADD", 0xFFFF, 1, 0),
        ("SUB", 0, 1, 0xFFFF),
        ("AND", 0xF0F0, 0xFF00, 0xF000),
        ("OR", 0xF0F0, 0x0F0F, 0xFFFF),
        ("XOR", 0xAAAA, 0xFFFF, 0x5555),
        ("MUL", 0x100, 0x100, 0),
        ("MULH", 0x100, 0x100, 1),
        ("SLL", 1, 15, 0x8000),
        ("SLL", 1, 16, 0),
        ("SRL", 0x8000, 15, 1),
        ("SRA", 0x8000, 15, 0xFFFF),
        ("SEQ", 5, 5, 1),
        ("SEQ", 5, 6, 0),
        ("SLTU", 1, 0xFFFF, 1),
        ("SLTS", 1, 0xFFFF, 0),   # 1 < -1 is false signed
        ("SLTS", 0xFFFF, 1, 1),   # -1 < 1 signed
    ])
    def test_cases(self, op, a, b, expect):
        assert eval_alu(op, a, b) == expect

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_add_matches_python(self, a, b):
        assert eval_alu("ADD", a, b) == (a + b) & 0xFFFF

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_mul_pair_reconstructs_product(self, a, b):
        lo = eval_alu("MUL", a, b)
        hi = eval_alu("MULH", a, b)
        assert (hi << 16) | lo == a * b

    @given(st.integers(0, 0xFFFF))
    def test_signed_roundtrip(self, a):
        assert to_signed16(a) & 0xFFFF == a


class TestCustomFunction:
    def _config_for(self, fn):
        """Build a CFU config from a per-bit boolean function."""
        config = 0
        for pos in range(16):
            for row in range(16):
                bits = [(row >> i) & 1 for i in range(4)]
                if fn(pos, *bits):
                    config |= 1 << (pos * 16 + row)
        return config

    def test_and_or(self):
        config = self._config_for(lambda pos, a, b, c, d: (a & b) | c)
        for a, b, c in [(0xFFFF, 0x00FF, 0xF000), (0x1234, 0x5678, 0x0001)]:
            assert eval_custom(config, a, b, c, 0) == ((a & b) | c)

    def test_per_position_constants(self):
        # Absorb the constant 0xF00F: result = a & 0xF00F.
        const = 0xF00F
        config = self._config_for(
            lambda pos, a, b, c, d: a & ((const >> pos) & 1))
        assert eval_custom(config, 0xFFFF, 0, 0, 0) == const
        assert eval_custom(config, 0x1234, 0, 0, 0) == 0x1234 & const


class TestEncoding:
    CASES = [
        isa.Nop(),
        isa.Set(5, 0xBEEF),
        isa.Alu("ADD", 1, 2, 3),
        isa.Alu("SLTS", 2047, 0, 2047),
        isa.Mux(4, 5, 6, 7),
        isa.Slice(1, 2, offset=3, length=5),
        isa.Slice(1, 2, offset=15, length=16),
        isa.AddCarry(9, 10, 11),
        isa.SetCarry(1),
        isa.Custom(3, 0, (1, 2, 3, 4)),
        isa.Custom(3, 31, (1, 2, 3, 4)),
        isa.Send(224, 7, 8),
        isa.LocalLoad(1, 2, 16383),
        isa.LocalStore(1, 2, 0),
        isa.Predicate(42),
        isa.GlobalLoad(1, (2, 3, 4)),
        isa.GlobalStore(1, (2, 3, 4)),
        isa.Expect(1, 2, 0xABCD),
    ]

    @pytest.mark.parametrize("instr", CASES, ids=lambda i: repr(i))
    def test_roundtrip(self, instr):
        word = encoding.encode(instr)
        assert 0 <= word < (1 << 64)
        assert encoding.decode(word) == instr

    def test_virtual_register_rejected(self):
        with pytest.raises(encoding.EncodingError):
            encoding.encode(isa.Alu("ADD", "v1", "v2", "v3"))

    def test_register_range_checked(self):
        with pytest.raises(encoding.EncodingError):
            encoding.encode(isa.Set(2048, 0))

    @given(st.integers(0, 2047), st.integers(0, 2047), st.integers(0, 2047),
           st.sampled_from(list(encoding._ALU_INDEX)))
    def test_alu_roundtrip_property(self, rd, rs1, rs2, op):
        instr = isa.Alu(op, rd, rs1, rs2)
        assert encoding.decode(encoding.encode(instr)) == instr

    def test_program_roundtrip(self):
        words = encoding.encode_program(self.CASES)
        assert encoding.decode_program(words) == self.CASES


class TestInstructionProtocol:
    def test_reads_writes(self):
        i = isa.Alu("ADD", "d", "a", "b")
        assert i.reads() == ("a", "b")
        assert i.writes() == ("d",)
        assert isa.Send(0, "rt", "rs").writes() == ()
        assert isa.GlobalStore("v", ("h", "m", "l")).reads() == \
            ("v", "h", "m", "l")

    def test_rename_all_operand_kinds(self):
        mapping = {"a": 1, "b": 2, "c": 3, "d": 4}
        assert isa.Mux("d", "a", "b", "c").rename(mapping) == \
            isa.Mux(4, 1, 2, 3)
        assert isa.GlobalLoad("d", ("a", "b", "c")).rename(mapping) == \
            isa.GlobalLoad(4, (1, 2, 3))

    def test_privileged_classification(self):
        assert isa.is_privileged(isa.Expect("a", "b", 1))
        assert isa.is_privileged(isa.GlobalLoad("d", ("a", "b", "c")))
        assert not isa.is_privileged(isa.Alu("ADD", "d", "a", "b"))
        assert not isa.is_privileged(isa.LocalStore("a", "b", 0))

    def test_validation(self):
        with pytest.raises(ValueError):
            isa.Alu("BOGUS", "d", "a", "b")
        with pytest.raises(ValueError):
            isa.Slice("d", "a", offset=16, length=1)
        with pytest.raises(ValueError):
            isa.Custom("d", 32, ("a", "b", "c", "d"))
        with pytest.raises(ValueError):
            isa.SetCarry(2)


class TestFunctionalInterpreter:
    def make_image(self, processes, exceptions=None):
        return ProgramImage("test", {p.pid: p for p in processes},
                            exceptions or ExceptionTable())

    def test_bsp_send_visible_next_vcycle(self):
        # p0 increments a counter and sends it to p1; p1 copies what it saw.
        p0 = Process(0, body=[
            isa.Alu("ADD", "count", "count", "one"),
            isa.Send(1, "remote_count", "count"),
        ], reg_init={"count": 0, "one": 1})
        p1 = Process(1, body=[
            isa.Alu("ADD", "seen", "remote_count", "zero"),
        ], reg_init={"remote_count": 0, "zero": 0})
        interp = isa.FunctionalInterpreter(self.make_image([p0, p1]))
        interp.step()
        # After Vcycle 0: p0.count == 1, message committed, but p1 computed
        # "seen" from the pre-commit value 0.
        assert interp.peek_reg(0, "count") == 1
        assert interp.peek_reg(1, "remote_count") == 1
        assert interp.peek_reg(1, "seen") == 0
        interp.step()
        assert interp.peek_reg(1, "seen") == 1

    def test_wide_add_carry_chain(self):
        # 32-bit add: 0x0001FFFF + 1 = 0x00020000 over two 16-bit limbs.
        p = Process(0, body=[
            isa.SetCarry(0),
            isa.AddCarry("lo", "alo", "blo"),
            isa.AddCarry("hi", "ahi", "bhi"),
        ], reg_init={"alo": 0xFFFF, "ahi": 0x0001, "blo": 1, "bhi": 0})
        interp = isa.FunctionalInterpreter(self.make_image([p]))
        interp.step()
        assert interp.peek_reg(0, "lo") == 0
        assert interp.peek_reg(0, "hi") == 2

    def test_scratchpad_and_predicate(self):
        p = Process(0, body=[
            isa.Predicate("yes"),
            isa.LocalStore("val", "base", 5),
            isa.Predicate("no"),
            isa.LocalStore("other", "base", 5),   # suppressed
            isa.LocalLoad("out", "base", 5),
        ], reg_init={"yes": 1, "no": 0, "val": 77, "other": 99, "base": 10})
        interp = isa.FunctionalInterpreter(self.make_image([p]))
        interp.step()
        assert interp.peek_scratch(0, 15) == 77
        assert interp.peek_reg(0, "out") == 77

    def test_finish_exception(self):
        table = ExceptionTable()
        eid = table.register(FinishAction())
        p = Process(0, body=[isa.Expect("a", "b", eid)],
                    reg_init={"a": 1, "b": 0})
        interp = isa.FunctionalInterpreter(self.make_image([p], table))
        result = interp.run(10)
        assert result.finished
        assert result.vcycles == 1
