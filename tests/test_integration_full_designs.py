"""Integration: every benchmark design at its *default* (benchmark)
scale, compiled for a mid-size grid and executed cycle-accurately against
the golden interpreter.  This is the heavyweight end-to-end check; the
per-design unit tests cover reduced parameterizations.
"""

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import Machine, MachineConfig
from repro.netlist import NetlistInterpreter

CONFIG = MachineConfig(grid_x=8, grid_y=8)

# noc is the most expensive to machine-run; keep its horizon tight.
_BUDGET = {name: info.cycles + 300 for name, info in DESIGNS.items()}


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_full_design_machine_matches_golden(name):
    info = DESIGNS[name]
    budget = _BUDGET[name]
    golden = NetlistInterpreter(info.build()).run(budget)
    assert golden.finished, f"{name}: golden run did not finish"

    result = compile_circuit(info.build(), CompilerOptions(config=CONFIG))
    machine = Machine(result.program, CONFIG, strict=True)
    mres = machine.run(budget)

    assert mres.displays == golden.displays
    assert mres.vcycles == golden.cycles
    assert mres.finished
    # Architecture invariants.
    assert result.report.max_imem <= CONFIG.imem_words
    assert result.report.cores_used <= CONFIG.num_cores
    # Every full Vcycle carries exactly the scheduled Sends; the final
    # (finishing) Vcycle may break off early at the $finish exception.
    expected = result.report.send_count * mres.vcycles
    slack = result.report.send_count
    assert expected - slack <= mres.counters.messages <= expected
