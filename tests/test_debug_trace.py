"""Tests for the execution tracer."""

from repro.compiler import CompilerOptions, compile_circuit
from repro.machine import Machine, TINY
from repro.machine.debug import TraceRecorder

from repro.fuzz.generator import counter_circuit


def make_machine():
    result = compile_circuit(counter_circuit(limit=4),
                             CompilerOptions(config=TINY))
    return Machine(result.program, TINY)


class TestTraceRecorder:
    def test_records_instructions(self):
        machine = make_machine()
        trace = TraceRecorder(machine)
        machine.run(10)
        assert trace.entries
        text = trace.render(limit=20)
        assert "core" in text
        assert trace.count("EXPECT") > 0  # display/finish traps

    def test_core_filter(self):
        machine = make_machine()
        trace = TraceRecorder(machine, cores={0})
        machine.run(10)
        assert all(e.core == 0 for e in trace.entries)

    def test_mnemonic_filter(self):
        machine = make_machine()
        trace = TraceRecorder(machine, mnemonics={"SEND"})
        machine.run(10)
        assert trace.entries
        assert all(e.text.startswith("SEND") for e in trace.entries)

    def test_window(self):
        machine = make_machine()
        trace = TraceRecorder(machine, last_vcycles=1)
        machine.run(10)
        vcycles = {e.vcycle for e in trace.entries}
        assert len(vcycles) <= 1

    def test_tracing_preserves_behaviour(self):
        plain = make_machine().run(10)
        machine = make_machine()
        TraceRecorder(machine)
        traced = machine.run(10)
        assert traced.displays == plain.displays
        assert traced.vcycles == plain.vcycles

    def test_detach(self):
        machine = make_machine()
        trace = TraceRecorder(machine)
        machine.step_vcycle()
        n = len(trace.entries)
        trace.detach()
        machine.step_vcycle()
        assert len(trace.entries) == n
