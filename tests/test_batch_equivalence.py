"""Batched execution vs per-lane runs: bit-identity, masking, restore.

``BatchRunner`` advances B runs of one compiled design per Vcycle
through a vectorized kernel.  Its contract is that *nothing* observable
may differ from running each lane alone on the same engine: displays,
finish status, Vcycle counts, performance counters, cache stats, and
per-core architectural state are all bit-identical per lane.  This file
enforces that contract over the whole design registry and both vector
lowerings, plus the divergence semantics (an early ``$finish`` masks
one lane without perturbing the rest), in-flight checkpoint/restore,
the serial fallback for engines without a batched kernel, and the
cache-key separation between scalar and batched emitted sources.
"""

from __future__ import annotations

import functools
import json

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.fuzz.generator import counter_circuit
from repro.fuzz.oracle import fuzz_seed_batch
from repro.machine import (BatchRunner, Machine, MachineConfig,
                           rebind_reg_inits, run_batch)
from repro.machine import codegen as cg
from repro.machine.batch_codegen import have_numpy

CONFIG = MachineConfig(grid_x=8, grid_y=8)
SMALL = MachineConfig(grid_x=3, grid_y=3)

ALL_DESIGNS = sorted(DESIGNS)


@functools.lru_cache(maxsize=None)
def _program(name: str):
    options = CompilerOptions(config=CONFIG)
    return compile_circuit(DESIGNS[name].build(), options).program


def _budget(name: str) -> int:
    return max(64, DESIGNS[name].cycles + 300)


@functools.lru_cache(maxsize=None)
def _counter_compile(limit: int = 40):
    circuit = counter_circuit(limit=limit, width=8)
    return compile_circuit(circuit, CompilerOptions(config=SMALL))


def _solo(program, budget, config=CONFIG, engine="codegen"):
    m = Machine(program, config, engine=engine)
    return m, m.run(budget)


def _assert_lane_identical(lane, solo_m, solo_r, batch_m, batch_r):
    tag = f"lane {lane}"
    assert batch_r.vcycles == solo_r.vcycles, tag
    assert batch_r.finished == solo_r.finished, tag
    assert batch_r.displays == solo_r.displays, tag
    assert batch_r.counters == solo_r.counters, tag
    assert batch_r.cache == solo_r.cache, tag
    for cid, core in solo_m.cores.items():
        batch_core = batch_m.cores[cid]
        assert batch_core.regs == core.regs, f"{tag} core {cid} regs"
        assert batch_core.scratch == core.scratch, \
            f"{tag} core {cid} scratch"


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_batch_bit_identical(name):
    """Three identical lanes of every design match three solo runs."""
    budget = _budget(name)
    program = _program(name)
    solo_m, solo_r = _solo(program, budget)
    runner = BatchRunner(program, CONFIG, width=3, lowering="list")
    outs = runner.run(budget)
    assert runner.lowering_used == "list"
    assert runner.errors == [None, None, None]
    for lane, out in enumerate(outs):
        _assert_lane_identical(lane, solo_m, solo_r,
                               runner.machines[lane], out)


def test_batch_numpy_lowering_bit_identical():
    """The numpy lowering obeys the same contract (and must not leak
    ``numpy.int64`` into architectural state)."""
    pytest.importorskip("numpy")
    assert have_numpy()
    for name in ("mc", "bc"):
        budget = _budget(name)
        program = _program(name)
        solo_m, solo_r = _solo(program, budget)
        runner = BatchRunner(program, CONFIG, width=3, lowering="numpy")
        outs = runner.run(budget)
        assert runner.lowering_used == "numpy"
        for lane, out in enumerate(outs):
            batch_m = runner.machines[lane]
            _assert_lane_identical(lane, solo_m, solo_r, batch_m, out)
            for core in batch_m.cores.values():
                assert all(type(v) is int for v in core.regs), name
                assert all(type(v) is int for v in core.scratch), name


def _counter_lanes(inits):
    result = _counter_compile()
    return [rebind_reg_inits(result, {"count": v}) if v else
            result.program for v in inits]


def test_divergence_masking_early_finish():
    """Lanes booted closer to the counter limit hit ``$finish`` on
    earlier Vcycles; each masked lane freezes bit-identically to its
    solo run while the rest keep going."""
    inits = [0, 12, 24, 36]
    programs = _counter_lanes(inits)
    runner = BatchRunner(programs, SMALL, lowering="list")
    outs = runner.run(200)
    assert runner.lowering_used == "list"
    finish_vcycles = [out.vcycles for out in outs]
    # Strictly decreasing: every lane diverged at a different Vcycle.
    assert finish_vcycles == sorted(finish_vcycles, reverse=True)
    assert len(set(finish_vcycles)) == len(inits)
    for lane, program in enumerate(programs):
        solo_m, solo_r = _solo(program, 200, SMALL)
        _assert_lane_identical(lane, solo_m, solo_r,
                               runner.machines[lane], outs[lane])


def test_batch_checkpoint_restore_in_flight():
    """A batch interrupted mid-run (some lanes already finished, some
    mid-flight) restores from a JSON-roundtripped snapshot and completes
    bit-identically to the uninterrupted batch."""
    inits = [0, 12, 24, 36]
    programs = _counter_lanes(inits)

    straight = BatchRunner(programs, SMALL, lowering="list")
    golden = straight.run(200)

    first = BatchRunner(programs, SMALL, lowering="list")
    partial = first.run(15)  # lane 3 finished, lanes 0-2 in flight
    assert any(out.finished for out in partial)
    assert not all(out.finished for out in partial)
    state = json.loads(json.dumps(first.checkpoint_state()))

    second = BatchRunner(programs, SMALL, lowering="list")
    second.load_checkpoint_state(state)
    resumed = second.run(200)

    assert second.errors == straight.errors
    for lane in range(len(inits)):
        _assert_lane_identical(
            lane, straight.machines[lane], golden[lane],
            second.machines[lane], resumed[lane])


def test_batch_checkpoint_rejects_mismatch():
    programs = _counter_lanes([0, 12])
    runner = BatchRunner(programs, SMALL)
    state = runner.checkpoint_state()
    other = BatchRunner(programs + programs[:1], SMALL)
    with pytest.raises(ValueError, match="width"):
        other.load_checkpoint_state(state)
    state["version"] = 99
    with pytest.raises(ValueError, match="version"):
        runner.load_checkpoint_state(state)


def test_fast_engine_serial_fallback():
    """Engines without a batched kernel run lanes serially under the
    same API with the same per-lane results."""
    program = _program("mm")
    budget = _budget("mm")
    solo_m, solo_r = _solo(program, budget, engine="fast")
    runner = BatchRunner(program, CONFIG, width=2, engine="fast")
    outs = runner.run(budget)
    assert runner.lowering_used is None
    for lane, out in enumerate(outs):
        _assert_lane_identical(lane, solo_m, solo_r,
                               runner.machines[lane], out)


def test_batch_cache_keys_are_distinct():
    """Scalar and batched kernels of one machine must never collide in
    the content-addressed source cache: the batch width and lowering
    are part of the key (satellite: cache-key separation)."""
    m = Machine(_program("mm"), CONFIG, engine="codegen")
    keys = {cg._content_key(m, variant=v) for v in (
        "scalar", "batch3-list", "batch4-list", "batch3-numpy")}
    assert len(keys) == 4


def test_run_batch_replication_requires_width():
    with pytest.raises(ValueError, match="width"):
        BatchRunner(_program("mm"), CONFIG)
    with pytest.raises(ValueError, match="out of range"):
        BatchRunner(_program("mm"), CONFIG, width=0)


def test_run_batch_one_shot():
    outs = run_batch(_counter_compile().program, 200, SMALL, width=2,
                     lowering="list")
    assert len(outs) == 2
    assert all(out.finished for out in outs)
    assert outs[0].displays == outs[1].displays


def test_fuzz_seed_batch_smoke():
    """The batched fuzz oracle compiles once, fans a seed out to
    init-variant lanes, and finds no divergence on a healthy tree."""
    report = fuzz_seed_batch(3, width=4, lowering="list")
    assert report.ok
    assert report.width == 4
    assert not report.rebind_fallback
    assert report.lowering == "list"
