"""Property-based tests: the cache against a flat-memory reference model,
and the i-cache penalty curve's invariants."""

from hypothesis import given, settings, strategies as st

from repro.machine import Cache, MachineConfig
from repro.perfmodel import EPYC_7V73X, I7_9700K, XEON_8272CL


def make_cache():
    config = MachineConfig(cache_words=128, cache_line_words=8,
                           cache_hit_stall=1, cache_miss_stall=10,
                           cache_writeback_stall=5)
    return Cache(config)


ops = st.lists(
    st.tuples(st.booleans(), st.integers(0, 1023),
              st.integers(0, 0xFFFF)),
    min_size=1, max_size=200,
)


class TestCacheCoherence:
    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_matches_flat_memory(self, trace):
        cache = make_cache()
        flat: dict[int, int] = {}
        for is_write, addr, value in trace:
            if is_write:
                cache.write(addr, value)
                flat[addr] = value
            else:
                got, _ = cache.read(addr)
                assert got == flat.get(addr, 0)

    @given(ops)
    @settings(max_examples=30, deadline=None)
    def test_flush_publishes_everything(self, trace):
        cache = make_cache()
        flat: dict[int, int] = {}
        for is_write, addr, value in trace:
            if is_write:
                cache.write(addr, value)
                flat[addr] = value
            else:
                cache.read(addr)
        cache.flush()
        for addr, value in flat.items():
            assert cache.dram.get(addr, 0) == value

    @given(ops)
    @settings(max_examples=30, deadline=None)
    def test_peek_always_coherent(self, trace):
        cache = make_cache()
        flat: dict[int, int] = {}
        for is_write, addr, value in trace:
            if is_write:
                cache.write(addr, value)
                flat[addr] = value
            else:
                cache.read(addr)
            assert cache.peek(addr) == flat.get(addr, 0)

    @given(ops)
    @settings(max_examples=30, deadline=None)
    def test_stats_consistent(self, trace):
        cache = make_cache()
        for is_write, addr, value in trace:
            if is_write:
                cache.write(addr, value)
            else:
                cache.read(addr)
        s = cache.stats
        assert s.hits + s.misses == s.accesses == len(trace)
        assert s.writebacks <= s.misses


class TestIcachePenalty:
    @given(st.floats(1.0, 1e9))
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, footprint):
        for platform in (I7_9700K, XEON_8272CL, EPYC_7V73X):
            p = platform.icache_penalty(footprint)
            assert 1.0 <= p <= platform.penalty_max + 1e-9

    @given(st.floats(1.0, 1e8), st.floats(1.0, 1e8))
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert I7_9700K.icache_penalty(lo) <= \
            I7_9700K.icache_penalty(hi) + 1e-9

    def test_within_l1_free(self):
        assert I7_9700K.icache_penalty(16 * 1024) == 1.0

    def test_barrier_grows_with_threads(self):
        assert EPYC_7V73X.barrier_ns(64) > EPYC_7V73X.barrier_ns(2)
        assert EPYC_7V73X.barrier_ns(1) == 0.0
