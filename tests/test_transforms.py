"""Tests for netlist-level transforms: constant folding, CSE, DCE, and
memory-to-register conversion - all validated semantically against the
golden interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.mem2reg import memory_to_registers
from repro.compiler.transforms import (
    common_subexpression_elimination,
    constant_fold,
    dead_code_elimination,
    optimize,
)
from repro.netlist import CircuitBuilder, NetlistInterpreter, run_circuit

from repro.fuzz.generator import counter_circuit, memory_circuit, random_circuit


def displays_of(circuit, cycles=20):
    return run_circuit(circuit, cycles).displays


class TestConstantFold:
    def test_folds_constant_tree(self):
        m = CircuitBuilder("cf")
        x = (m.const(3, 8) + m.const(4, 8)) * m.const(2, 8)
        r = m.register("r", 8)
        r.next = x
        m.display(m.const(1, 1), "%d", r)
        m.finish(r == 14)
        circuit = constant_fold(m.build())
        from repro.netlist.ir import OpKind
        kinds = {op.kind for op in circuit.ops}
        assert kinds == {OpKind.CONST, OpKind.EQ}  # arithmetic gone
        assert run_circuit(circuit, 10).finished

    def test_preserves_semantics(self):
        for seed in range(5):
            original = random_circuit(seed + 900)
            folded = constant_fold(original)
            assert displays_of(random_circuit(seed + 900)) == \
                displays_of(folded)


class TestCSE:
    def test_merges_duplicates(self):
        m = CircuitBuilder("cse")
        r = m.register("r", 8)
        a = r + 1
        b = r + 1  # structurally identical
        r.next = (a ^ b).trunc(8)
        m.finish(m.const(0, 1))
        before = len(m.build(validate=False).ops)
        after = len(common_subexpression_elimination(
            m.build(validate=False)).ops)
        assert after < before

    def test_commutative_matching(self):
        m = CircuitBuilder("cse")
        r = m.register("r", 8)
        s = m.register("s", 8)
        a = r + s
        b = s + r
        r.next = (a & b).trunc(8)
        m.finish(m.const(0, 1))
        circuit = common_subexpression_elimination(m.build())
        from repro.netlist.ir import OpKind
        adds = [op for op in circuit.ops if op.kind is OpKind.ADD]
        assert len(adds) == 1


class TestDCE:
    def test_removes_dead_ops(self):
        m = CircuitBuilder("dce")
        r = m.register("r", 8)
        r.next = (r + 1).trunc(8)
        _dead = (r * 17) ^ 0x55  # unused
        m.finish(r == 3)
        circuit = dead_code_elimination(m.build())
        from repro.netlist.ir import OpKind
        assert not any(op.kind is OpKind.MUL for op in circuit.ops)

    def test_removes_dead_registers(self):
        m = CircuitBuilder("dce")
        live = m.register("live", 8)
        dead = m.register("dead", 8)
        live.next = (live + 1).trunc(8)
        dead.next = (dead + live).trunc(8)  # never observed
        m.finish(live == 3)
        circuit = dead_code_elimination(m.build())
        assert "dead" not in circuit.registers
        assert "live" in circuit.registers

    def test_keeps_transitively_live_registers(self):
        m = CircuitBuilder("dce")
        a = m.register("a", 8)
        b = m.register("b", 8)
        a.next = b
        b.next = (b + 1).trunc(8)
        m.finish(a == 3)   # a observed; b feeds a
        circuit = dead_code_elimination(m.build())
        assert set(circuit.registers) == {"a", "b"}


class TestOptimizePipeline:
    @pytest.mark.parametrize("seed", range(6))
    def test_semantics_preserved(self, seed):
        golden = displays_of(random_circuit(seed + 300))
        assert displays_of(optimize(random_circuit(seed + 300))) == golden

    def test_optimize_shrinks(self):
        circuit = random_circuit(5, n_ops=50)
        assert len(optimize(circuit).ops) <= len(circuit.ops)


class TestMem2Reg:
    def test_small_memory_converted(self):
        circuit = memory_to_registers(memory_circuit(depth=16), 512)
        assert not circuit.memories           # flattened
        assert any(name.startswith("buf%") for name in circuit.registers)

    def test_large_memory_kept(self):
        m = CircuitBuilder("big")
        mem = m.memory("big", 16, 4096)
        cyc = m.register("cyc", 16)
        cyc.next = (cyc + 1).trunc(16)
        mem.write(cyc.trunc(12), cyc, m.const(1, 1))
        m.finish(cyc == 4)
        circuit = memory_to_registers(m.build(), 512)
        assert "big" in circuit.memories

    def test_sram_hint_respected(self):
        m = CircuitBuilder("pinned")
        mem = m.memory("pinned", 16, 8, sram_hint=True)
        cyc = m.register("cyc", 16)
        cyc.next = (cyc + 1).trunc(16)
        mem.write(cyc.trunc(3), cyc, m.const(1, 1))
        m.finish(cyc == 4)
        circuit = memory_to_registers(m.build(), 512)
        assert "pinned" in circuit.memories

    def test_rom_becomes_constants(self):
        m = CircuitBuilder("rom")
        rom = m.memory("rom", 8, 4, init=[5, 6, 7, 8])
        idx = m.register("idx", 2)
        idx.next = (idx + 1).trunc(2)
        m.display(m.const(1, 1), "%d", rom.read(idx))
        m.finish(idx == 3)
        circuit = memory_to_registers(m.build(), 512)
        assert not circuit.memories
        assert not any(n.startswith("rom%") for n in circuit.registers)
        assert displays_of(circuit, 10) == ["5", "6", "7", "8"]

    def test_semantics_preserved_with_writes(self):
        golden = displays_of(memory_circuit(), 60)
        converted = memory_to_registers(memory_circuit(), 512)
        assert displays_of(converted, 60) == golden

    def test_multiple_write_ports_last_wins(self):
        def build():
            m = CircuitBuilder("mw")
            mem = m.memory("mem", 8, 4)
            cyc = m.register("cyc", 8)
            cyc.next = (cyc + 1).trunc(8)
            addr = cyc.trunc(2)
            mem.write(addr, m.const(11, 8), m.const(1, 1))
            mem.write(addr, m.const(22, 8), cyc[0])  # sometimes overrides
            m.display(cyc == 4, "%d %d", mem.read(m.const(0, 2)),
                      mem.read(m.const(1, 2)))
            m.finish(cyc == 4)
            return m.build()
        golden = displays_of(build(), 10)
        assert displays_of(memory_to_registers(build(), 512), 10) == golden

    @given(st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_random_property(self, seed):
        # mem2reg is an identity on circuits without memories.
        circuit = random_circuit(seed + 700, n_ops=15)
        converted = memory_to_registers(circuit, 512)
        assert converted is circuit
