"""Differential fuzzing: randomized circuits (including memories and
dynamic shifts) driven through the whole toolchain - golden interpreter
vs compiled cycle-accurate machine - under several compiler
configurations."""

import random

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.machine import Machine, MachineConfig
from repro.netlist import CircuitBuilder, NetlistInterpreter

from util_circuits import random_circuit

CONFIG = MachineConfig(grid_x=3, grid_y=3, result_latency=6)


def random_memory_circuit(seed, n_regs=3, n_ops=12, mem_depth=8,
                          cycles=10):
    """Random circuit plus a read/write memory in the loop."""
    rng = random.Random(seed)
    m = CircuitBuilder(f"fuzzmem_{seed}")
    cyc = m.register("cyc", 16)
    cyc.next = (cyc + 1).trunc(16)
    regs = [m.register(f"r{i}", 16, init=rng.getrandbits(16))
            for i in range(n_regs)]
    mem = m.memory("mem", 16, mem_depth,
                   init=[rng.getrandbits(16) for _ in range(mem_depth)])

    abits = (mem_depth - 1).bit_length()
    pool = list(regs) + [cyc]
    for _ in range(n_ops):
        a, b = rng.choice(pool), rng.choice(pool)
        pool.append(rng.choice([
            lambda: (a + b).trunc(16),
            lambda: a ^ b,
            lambda: (a * 3).trunc(16),
            lambda: m.mux(a[0], a, b),
            lambda: a >> b.trunc(3),
        ])())
    rd = mem.read(rng.choice(pool).trunc(abits))
    pool.append(rd)
    mem.write(rng.choice(pool).trunc(abits), rng.choice(pool),
              enable=rng.choice(pool)[0])
    for reg in regs:
        reg.next = rng.choice(pool).trunc(16)

    m.display(m.const(1, 1), "t %x %x %x %x", *regs, rd)
    m.finish(cyc == cycles)
    return m.build()


def run_differential(build, options, cycles=20):
    golden = NetlistInterpreter(build()).run(cycles)
    result = compile_circuit(build(), options)
    machine = Machine(result.program, CONFIG, strict=True)
    mres = machine.run(cycles)
    assert mres.displays == golden.displays
    assert mres.vcycles == golden.cycles


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_memory_circuits_with_mem2reg(seed):
    run_differential(lambda: random_memory_circuit(seed + 4000),
                     CompilerOptions(config=CONFIG))


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_memory_circuits_without_mem2reg(seed):
    run_differential(lambda: random_memory_circuit(seed + 4100),
                     CompilerOptions(config=CONFIG, mem2reg_max_words=0))


@pytest.mark.parametrize("seed", range(6))
def test_fuzz_no_coalescing(seed):
    run_differential(lambda: random_circuit(seed + 4200, n_ops=20),
                     CompilerOptions(config=CONFIG, coalesce_state=False))


@pytest.mark.parametrize("seed", range(6))
def test_fuzz_lpt_strategy(seed):
    run_differential(lambda: random_circuit(seed + 4300, n_ops=20),
                     CompilerOptions(config=CONFIG, merge_strategy="lpt"))


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_greedy_custom_selector(seed):
    run_differential(lambda: random_circuit(seed + 4400, n_ops=25),
                     CompilerOptions(config=CONFIG,
                                     custom_selector="greedy"))


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_single_core(seed):
    config = MachineConfig(grid_x=1, grid_y=1, result_latency=6)
    golden = NetlistInterpreter(
        random_memory_circuit(seed + 4500)).run(20)
    result = compile_circuit(random_memory_circuit(seed + 4500),
                             CompilerOptions(config=config,
                                             mem2reg_max_words=0))
    mres = Machine(result.program, config, strict=True).run(20)
    assert mres.displays == golden.displays
