"""Differential fuzzing: randomized circuits (including memories and
dynamic shifts) driven through the whole toolchain under several
compiler configurations.

The generators, oracle registry, and trace comparison now live in
:mod:`repro.fuzz`; these tests are thin wrappers that pin the historical
seed ranges as regressions against the named oracles.
"""

import pytest

from repro.fuzz.generator import random_circuit, random_memory_circuit
from repro.fuzz.oracle import FUZZ_CONFIG, matrix_oracles, run_matrix
from repro.machine import MachineConfig


def assert_oracle_clean(make_circuit, oracle, cycles=20,
                        config=FUZZ_CONFIG):
    """Run one named oracle against the golden interpreter reference."""
    _, divergences = run_matrix(make_circuit, matrix_oracles(oracle),
                                cycles, config)
    assert not divergences, divergences[0].describe()


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_memory_circuits_with_mem2reg(seed):
    assert_oracle_clean(lambda: random_memory_circuit(seed + 4000),
                        "machine-strict")


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_memory_circuits_without_mem2reg(seed):
    assert_oracle_clean(lambda: random_memory_circuit(seed + 4100),
                        "machine-strict-nomem2reg")


@pytest.mark.parametrize("seed", range(6))
def test_fuzz_no_coalescing(seed):
    assert_oracle_clean(lambda: random_circuit(seed + 4200, n_ops=20),
                        "machine-strict-nocoalesce")


@pytest.mark.parametrize("seed", range(6))
def test_fuzz_lpt_strategy(seed):
    assert_oracle_clean(lambda: random_circuit(seed + 4300, n_ops=20),
                        "machine-strict-lpt")


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_greedy_custom_selector(seed):
    assert_oracle_clean(lambda: random_circuit(seed + 4400, n_ops=25),
                        "machine-strict-greedy")


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_single_core(seed):
    config = MachineConfig(grid_x=1, grid_y=1, result_latency=6)
    assert_oracle_clean(lambda: random_memory_circuit(seed + 4500),
                        "machine-strict-nomem2reg", config=config)
