"""Snapshot/restore must be invisible: every design, every engine.

The subsystem's core contract - a run interrupted by a checkpoint and
continued from the restored snapshot is bit-identical to a run that was
never interrupted - enforced over the full design registry under every
registered engine, with the snapshot taken at an *awkward* point: for
the event-loop engines the machine is paused mid-Vcycle (pending
writebacks and, where the design produces them, NoC messages in
flight); the compiled engines (fast, codegen) snapshot at a Vcycle
boundary (their trusted paths are Vcycle-atomic by design).  Both sides
run under a profiler, whose merged
counters must also match the uninterrupted profile exactly.
"""

from __future__ import annotations

import functools

import pytest

from repro import checkpoint as ck
from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import COMPILED_ENGINES, ENGINES, Machine, MachineConfig
from repro.obs import Profiler

CONFIG = MachineConfig(grid_x=8, grid_y=8)

ALL_DESIGNS = sorted(DESIGNS)


@functools.lru_cache(maxsize=None)
def _program(name: str):
    options = CompilerOptions(config=CONFIG)
    return compile_circuit(DESIGNS[name].build(), options).program


def _budget(name: str) -> int:
    return max(64, DESIGNS[name].cycles + 300)


@functools.lru_cache(maxsize=None)
def _reference(name: str, engine: str):
    """Uninterrupted profiled run (shared across the matrix)."""
    profiler = Profiler()
    machine = Machine(_program(name), CONFIG, engine=engine,
                      profiler=profiler)
    result = machine.run(_budget(name))
    return machine, result, profiler


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_snapshot_resume_bit_identical(name, engine):
    ref_machine, ref_result, ref_profiler = _reference(name, engine)
    budget = _budget(name)
    half = max(1, ref_result.vcycles // 2)

    profiler = Profiler()
    machine = Machine(_program(name), CONFIG, engine=engine,
                      profiler=profiler)
    machine.run(half)
    if engine not in COMPILED_ENGINES and not machine.finished:
        # The awkward boundary: pause partway into the next Vcycle so
        # the snapshot carries a split Vcycle (pending writebacks, any
        # in-flight messages, the half-populated link reservations).
        machine.step_events(5)

    snapshot = ck.decode_snapshot(
        ck.encode_snapshot(ck.capture(machine)))
    resumed_profiler = Profiler()
    restored = ck.restore(snapshot, program=_program(name), config=CONFIG,
                          profiler=resumed_profiler)
    assert restored.engine == engine
    result = restored.run(budget)

    assert result.vcycles == ref_result.vcycles
    assert result.finished == ref_result.finished
    assert result.displays == ref_result.displays
    assert result.counters == ref_result.counters
    assert result.cache == ref_result.cache
    for cid, core in ref_machine.cores.items():
        restored_core = restored.cores[cid]
        assert restored_core.regs == core.regs, f"core {cid} registers"
        assert restored_core.scratch == core.scratch, f"core {cid} scratch"
    assert restored.cache.dram == ref_machine.cache.dram

    assert resumed_profiler.totals() == ref_profiler.totals()
    assert resumed_profiler.state_dict() == ref_profiler.state_dict()
