"""Tests for multi-clock-domain support (paper SS8 future work)."""

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.machine import Machine, TINY
from repro.netlist import CircuitBuilder, NetlistInterpreter
from repro.netlist.clocking import ClockDomain, clock_domain


def dual_clock_circuit(divisor=4, cycles=24):
    """A fast counter plus a slow-domain counter at clk/divisor; a
    checker asserts the ratio every fast cycle."""
    m = CircuitBuilder("dual_clock")
    fast = m.register("fast", 16)
    fast.next = (fast + 1).trunc(16)

    slow_dom = clock_domain(m, "slow", divisor)
    slow = slow_dom.register("slow", 16)
    slow.next = (slow + 1).trunc(16)

    # slow counts activations: slow == ceil-ish(fast / divisor) depending
    # on phase; with phase 0 the domain fires at fast = 0, divisor, ...
    expected = m.register("expected", 16)
    expected.update(slow_dom.rising(), (expected + 1).trunc(16))
    m.check_sticky(m.const(1, 1), slow == expected,
                   "slow domain diverged")
    m.display(fast == cycles, "fast %d slow %d", fast, slow)
    m.finish(fast == cycles)
    return m.build()


class TestClockDomain:
    def test_divided_counter(self):
        interp = NetlistInterpreter(dual_clock_circuit(divisor=4))
        result = interp.run(100)
        assert result.finished
        # activations at fast = 0, 4, ..., 20 -> six increments visible
        # by fast cycle 24 (the activation *at* 24 lands a cycle later).
        assert result.displays == ["fast 24 slow 6"]

    def test_divisor_one_is_fast_clock(self):
        m = CircuitBuilder("d1")
        dom = clock_domain(m, "same", 1)
        r = dom.register("r", 8)
        r.next = (r + 1).trunc(8)
        m.finish(r == 5)
        result = NetlistInterpreter(m.build()).run(50)
        assert result.cycles == 6

    def test_phase_offset(self):
        m = CircuitBuilder("ph")
        fast = m.register("fast", 8)
        fast.next = (fast + 1).trunc(8)
        dom = clock_domain(m, "off", 4, phase=2)
        r = dom.register("r", 8)
        r.next = (r + 1).trunc(8)
        m.finish(fast == 9)
        interp = NetlistInterpreter(m.build())
        interp.run(50)
        # activations at fast = 2, 6 -> r incremented twice by cycle 9.
        assert interp.peek_register("r") == 2

    def test_holds_between_activations(self):
        m = CircuitBuilder("hold")
        dom = clock_domain(m, "slow", 8)
        r = dom.register("r", 8, init=5)
        r.next = (r + 1).trunc(8)
        m.finish(m.const(0, 1))
        interp = NetlistInterpreter(m.build())
        values = []
        for _ in range(9):
            interp.step()
            values.append(interp.peek_register("r"))
        assert values == [6, 6, 6, 6, 6, 6, 6, 6, 7]

    def test_validation(self):
        m = CircuitBuilder("v")
        with pytest.raises(ValueError):
            clock_domain(m, "bad", 0)
        with pytest.raises(ValueError):
            clock_domain(m, "bad2", 4, phase=4)

    def test_compiles_to_manticore(self):
        golden = NetlistInterpreter(dual_clock_circuit()).run(100)
        result = compile_circuit(dual_clock_circuit(),
                                 CompilerOptions(config=TINY))
        mres = Machine(result.program, TINY).run(100)
        assert mres.displays == golden.displays
        assert mres.vcycles == golden.cycles
