"""Tests for out-of-band waveform collection (the paper's SS8 future-work
item, implemented on the machine model)."""

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.machine import Machine, TINY
from repro.machine.waveform import Probe, WaveformCollector, trace_map_for
from repro.netlist import NetlistInterpreter

from repro.fuzz.generator import counter_circuit


@pytest.fixture()
def compiled_counter():
    return compile_circuit(counter_circuit(limit=6),
                           CompilerOptions(config=TINY))


class TestTraceMap:
    def test_finds_rtl_registers(self, compiled_counter):
        probes = trace_map_for(compiled_counter)
        labels = {p.label for p in probes}
        assert "count_0" in labels

    def test_name_filter(self, compiled_counter):
        probes = trace_map_for(compiled_counter, names=["count"])
        assert probes
        assert all(p.label.startswith("count") for p in probes)
        assert not trace_map_for(compiled_counter, names=["nonexistent"])


class TestCollector:
    def collect(self, compiled):
        machine = Machine(compiled.program, TINY)
        probes = trace_map_for(compiled, names=["count"])
        collector = WaveformCollector(machine, probes)
        collector.run(100)
        return collector

    def test_samples_follow_golden_trace(self, compiled_counter):
        collector = self.collect(compiled_counter)
        # Reconstruct count over time from the delta samples.
        values = []
        current = None
        for _t, changes in collector.samples:
            if "count_0" in changes:
                current = changes["count_0"]
            values.append(current)
        golden = NetlistInterpreter(counter_circuit(limit=6))
        expected = [golden.peek_register("count")]
        while not golden.finished and golden.cycle < 20:
            golden.step()
            expected.append(golden.peek_register("count"))
        assert values == expected[:len(values)]
        assert values[-1] == 7  # ran one past the display cycle

    def test_sampling_does_not_perturb_timing(self, compiled_counter):
        plain = Machine(compiled_counter.program, TINY).run(100)
        collector = self.collect(compiled_counter)
        assert collector.machine.counters.vcycles == plain.vcycles
        assert collector.machine.displays == plain.displays

    def test_vcd_output_well_formed(self, compiled_counter):
        collector = self.collect(compiled_counter)
        vcd = collector.vcd_text()
        assert "$timescale" in vcd
        assert "$var wire 16" in vcd
        assert "$enddefinitions" in vcd
        assert vcd.count("#") >= len(collector.samples)
        # every value change line is binary + id
        for line in vcd.splitlines():
            if line.startswith("b"):
                bits, _ident = line[1:].split(" ")
                assert set(bits) <= {"0", "1"}

    def test_delta_encoding(self, compiled_counter):
        collector = self.collect(compiled_counter)
        # count changes every cycle, so every sample reports it.
        changed = [c for _t, c in collector.samples if "count_0" in c]
        assert len(changed) == len(collector.samples)


class TestManualProbe:
    def test_probe_machine_register(self, compiled_counter):
        machine = Machine(compiled_counter.program, TINY)
        probe = Probe("raw", core=0, reg=0)
        collector = WaveformCollector(machine, [probe])
        collector.run(3)
        assert collector.samples
