"""Tests for the ESSENT-style conditional-evaluation simulator."""

import pytest

from repro.baseline import EssentSimulator
from repro.designs import DESIGNS
from repro.netlist import CircuitBuilder, run_circuit
from repro.perfmodel import I7_9700K

from repro.fuzz.generator import counter_circuit, memory_circuit, random_circuit


class TestSemantics:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_golden_on_random_circuits(self, seed):
        golden = run_circuit(random_circuit(seed + 2000), 20)
        sim = EssentSimulator(random_circuit(seed + 2000))
        sim.run(20)
        assert sim.displays == golden.displays

    def test_counter(self):
        golden = run_circuit(counter_circuit(), 100)
        sim = EssentSimulator(counter_circuit())
        sim.run(100)
        assert sim.displays == golden.displays
        assert sim.finished

    def test_memories(self):
        golden = run_circuit(memory_circuit(), 100)
        sim = EssentSimulator(memory_circuit())
        sim.run(100)
        assert sim.displays == golden.displays

    @pytest.mark.parametrize("name", ["jpeg", "blur", "cgra"])
    def test_benchmark_designs(self, name):
        info = DESIGNS[name]
        golden = run_circuit(info.build(), info.cycles + 300)
        sim = EssentSimulator(info.build())
        sim.run(info.cycles + 300)
        assert sim.displays == golden.displays


class TestActivityAccounting:
    def make_gated(self, divisor):
        """A cheap always-on divider gating an expensive datapath: the
        datapath's inputs only change when the divider fires, so an
        activity-aware simulator can skip it."""
        m = CircuitBuilder("gated")
        cyc = m.register("cyc", 16)
        cyc.next = (cyc + 1).trunc(16)
        div = m.register("div", 8)
        wrap = div == (divisor - 1)
        div.next = m.mux(wrap, (div + 1).trunc(8), m.const(0, 8))
        heavy = m.register("heavy", 32, init=0x1234)
        value = heavy
        for stage in range(8):
            value = (value.mul_wide(value).trunc(32)
                     ^ (value + stage)).trunc(32)
        heavy.update(wrap, value)
        m.display(cyc == 64, "%d", heavy)
        m.finish(cyc == 64)
        return m.build()

    def test_low_activity_skips_work(self):
        active = EssentSimulator(self.make_gated(1), min_task_cost=5)
        active.run(80)
        gated = EssentSimulator(self.make_gated(16), min_task_cost=5)
        gated.run(80)
        assert gated.stats.work_factor < active.stats.work_factor
        assert gated.stats.partition_skips > 0

    def test_activity_factor_bounds(self):
        sim = EssentSimulator(counter_circuit())
        stats = sim.run(50)
        assert 0.0 < stats.activity_factor <= 1.0
        assert 0.0 < stats.work_factor <= 1.0

    def test_rate_model_positive(self):
        sim = EssentSimulator(counter_circuit(display=False))
        sim.run(30)
        assert sim.modeled_rate_khz(I7_9700K) > 0

    def test_rate_model_requires_run(self):
        sim = EssentSimulator(counter_circuit())
        with pytest.raises(RuntimeError):
            sim.modeled_rate_khz(I7_9700K)

    def test_always_active_design_never_skips_compute(self):
        # bc's pipeline changes every wire every cycle.
        from repro.designs import bc
        sim = EssentSimulator(bc.build(rounds=4, difficulty_bits=2,
                                       max_cycles=40))
        stats = sim.run(60)
        assert stats.activity_factor > 0.9
