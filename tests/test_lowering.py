"""Differential tests of the 16-bit lowering: every netlist op kind, over
many widths, compiled and executed against the golden interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import CompilerOptions, compile_circuit
from repro.compiler.lower import CompilerError, lower_circuit, nlimbs, limb_width
from repro.machine import Machine, MachineConfig
from repro.netlist import CircuitBuilder, NetlistInterpreter, mask

CONFIG = MachineConfig(grid_x=2, grid_y=2, result_latency=4)


def run_binary_op(op_name, a, b, wa, wb, result_width=None):
    """Build reg-held operands, apply the op, display the result; run on
    both the golden interpreter and the machine; return both values."""
    def build():
        m = CircuitBuilder(f"op_{op_name}")
        ra = m.register("ra", wa, init=a)
        rb = m.register("rb", wb, init=b)
        value = getattr_or_operator(m, op_name, ra, rb)
        out = m.register("out", value.width)
        out.next = value
        fire = m.register("fire", 2)
        fire.next = (fire + 1).trunc(2)
        m.display(fire == 2, "%d", out)
        m.finish(fire == 2)
        return m.build()

    golden = NetlistInterpreter(build()).run(10)
    result = compile_circuit(build(), CompilerOptions(config=CONFIG))
    mres = Machine(result.program, CONFIG).run(10)
    assert mres.displays == golden.displays, (
        op_name, a, b, wa, wb, mres.displays, golden.displays)
    return int(golden.displays[0])


def getattr_or_operator(m, op_name, ra, rb):
    import operator
    ops = {
        "add": lambda: ra + rb,
        "sub": lambda: ra - rb,
        "and": lambda: ra & rb,
        "or": lambda: ra | rb,
        "xor": lambda: ra ^ rb,
        "not": lambda: ~ra,
        "mul": lambda: ra * rb,
        "mul_wide": lambda: ra.mul_wide(rb),
        "eq": lambda: ra == rb,
        "ne": lambda: ra != rb,
        "ltu": lambda: ra.ltu(rb),
        "lts": lambda: ra.lts(rb),
        "shl_dyn": lambda: ra << rb.trunc(min(rb.width, 6)),
        "shr_dyn": lambda: ra >> rb.trunc(min(rb.width, 6)),
        "ashr_dyn": lambda: ra.ashr(rb.trunc(min(rb.width, 6))),
        "redor": lambda: ra.any(),
        "redand": lambda: ra.all(),
        "redxor": lambda: ra.parity(),
        "cat": lambda: m.cat(ra, rb),
        "mux": lambda: m.mux(rb[0], ra, ~ra),
    }
    return ops[op_name]()


WIDTH_CASES = [(8, 8), (16, 16), (17, 17), (24, 24), (32, 32), (33, 33),
               (48, 48), (1, 1), (16, 8), (40, 24)]


class TestBinaryOpsAcrossWidths:
    @pytest.mark.parametrize("op", ["add", "sub", "and", "or", "xor",
                                    "mul", "eq", "ne", "ltu", "lts"])
    @pytest.mark.parametrize("wa,wb", [(8, 8), (17, 17), (32, 32),
                                       (33, 33)])
    def test_op(self, op, wa, wb):
        a = (0xDEADBEEFCAFE1234 ^ (wa * 77)) & mask(wa)
        b = (0x123456789ABCDEF0 ^ (wb * 13)) & mask(wb)
        run_binary_op(op, a, b, wa, wb)

    @pytest.mark.parametrize("op", ["not", "redor", "redand", "redxor"])
    @pytest.mark.parametrize("wa", [1, 7, 16, 23, 32, 47])
    def test_unary(self, op, wa):
        a = 0x5A5A5A5A5A5A & mask(wa)
        run_binary_op(op, a, 0, wa, 4)

    @pytest.mark.parametrize("op", ["shl_dyn", "shr_dyn", "ashr_dyn"])
    @pytest.mark.parametrize("wa,amount", [(16, 3), (24, 9), (32, 17),
                                           (40, 0), (20, 19)])
    def test_dynamic_shifts(self, op, wa, amount):
        a = 0x9C3F17E5B2D84A6 & mask(wa)
        run_binary_op(op, a, amount, wa, 6)

    def test_cat_and_mux(self):
        run_binary_op("cat", 0xAB, 0xCD, 8, 8)
        run_binary_op("mux", 0x1234, 1, 16, 4)
        run_binary_op("mux", 0x1234, 0, 16, 4)

    @given(st.integers(1, 40), st.data())
    @settings(max_examples=15, deadline=None)
    def test_add_property(self, width, data):
        a = data.draw(st.integers(0, mask(width)))
        b = data.draw(st.integers(0, mask(width)))
        got = run_binary_op("add", a, b, width, width)
        assert got == (a + b) & mask(width)

    @given(st.integers(2, 36), st.data())
    @settings(max_examples=10, deadline=None)
    def test_mul_wide_property(self, width, data):
        a = data.draw(st.integers(0, mask(width)))
        b = data.draw(st.integers(0, mask(width)))
        got = run_binary_op("mul_wide", a, b, width, width)
        assert got == a * b


class TestLoweringInternals:
    def test_nlimbs(self):
        assert [nlimbs(w) for w in (1, 16, 17, 32, 33)] == [1, 1, 2, 2, 3]

    def test_limb_width(self):
        assert limb_width(20, 0) == 16
        assert limb_width(20, 1) == 4
        assert limb_width(32, 1) == 16

    def test_carry_edges_recorded(self):
        m = CircuitBuilder("carry")
        a = m.register("a", 32)
        a.next = (a + 1).trunc(32)
        m.finish(a == 5)
        design = lower_circuit(m.build())
        assert design.extra_data_edges  # wide add created carry chain
        assert design.carry_indices

    def test_constants_pooled(self):
        m = CircuitBuilder("consts")
        a = m.register("a", 16)
        a.next = ((a + 3) ^ 3).trunc(16)
        m.finish(a == 9)
        design = lower_circuit(m.build())
        threes = [r for v, r in design.const_regs.items() if v == 3]
        assert len(threes) == 1

    def test_open_circuit_rejected(self):
        m = CircuitBuilder("open")
        x = m.input("x", 4)
        m.output("y", x)
        with pytest.raises(CompilerError):
            lower_circuit(m.build())
