"""Observation must never perturb: profiler on == profiler off.

The whole value of ``repro.obs`` rests on one contract: attaching a
:class:`~repro.obs.Profiler` (or an ambient span tracer) to a run
changes *nothing observable*.  This file enforces bit-identity of the
full :class:`~repro.machine.grid.MachineResult` - Vcycle count,
``finished``, display stream, machine-wide ``PerfCounters``, cache
statistics - plus every core's registers and scratchpad, across all
nine benchmark designs and all three execution engines.
"""

from __future__ import annotations

import functools

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS
from repro.machine import ENGINES, Machine, MachineConfig
from repro.obs import Profiler, Tracer, use_tracer

CONFIG = MachineConfig(grid_x=8, grid_y=8)

ALL_DESIGNS = sorted(DESIGNS)


@functools.lru_cache(maxsize=None)
def _compiled(name: str):
    options = CompilerOptions(config=CONFIG)
    return compile_circuit(DESIGNS[name].build(), options)


def _budget(name: str, engine: str) -> int:
    # Full driver-complete budget on the fast engine; the per-event
    # engines get a capped (but identical for both sides) budget so the
    # 9 x 3 matrix stays affordable.  Identity under a truncated run is
    # exactly as strong a check as under a finished one.
    full = max(64, DESIGNS[name].cycles + 300)
    return full if engine == "fast" else min(full, 96)


def _run(name: str, engine: str, profiler: Profiler | None):
    machine = Machine(_compiled(name).program, CONFIG, engine=engine,
                      profiler=profiler)
    result = machine.run(_budget(name, engine))
    return machine, result


@functools.lru_cache(maxsize=None)
def _baseline(name: str, engine: str):
    return _run(name, engine, None)


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_profiler_does_not_perturb(name, engine):
    base_m, base_r = _baseline(name, engine)
    prof_m, prof_r = _run(name, engine, Profiler())

    assert prof_r.vcycles == base_r.vcycles
    assert prof_r.finished == base_r.finished
    assert prof_r.displays == base_r.displays
    assert prof_r.counters == base_r.counters
    assert prof_r.cache == base_r.cache

    for cid, core in base_m.cores.items():
        prof_core = prof_m.cores[cid]
        assert prof_core.regs == core.regs, f"core {cid} registers"
        assert prof_core.scratch == core.scratch, f"core {cid} scratch"


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_tracer_does_not_perturb(engine):
    """An ambient span tracer around compile + run is equally inert."""
    name = "mc"
    base_m, base_r = _baseline(name, engine)
    with use_tracer(Tracer()) as tracer:
        prof_m, prof_r = _run(name, engine, None)
    assert tracer.spans, "machine.run should have produced spans"
    assert prof_r.counters == base_r.counters
    assert prof_r.displays == base_r.displays
    for cid, core in base_m.cores.items():
        assert prof_m.cores[cid].regs == core.regs


def test_profiler_actually_observes():
    """Guards against the identity test passing because the profiler
    was never consulted: a profiled mc run must have recorded work."""
    _, result = _baseline("mc", "fast")
    profiler = Profiler()
    _run("mc", "fast", profiler)
    totals = profiler.totals()
    assert totals["instructions"] == result.counters.instructions > 0
    assert totals["sends"] == result.counters.messages > 0
    assert profiler.total_hops > 0
    assert profiler.samples


def test_zero_budget_run_is_well_formed():
    """Zero-Vcycle runs report rate 0.0 and an explicit status instead
    of dividing by zero (the [fix] satellite)."""
    machine = Machine(_compiled("mc").program, CONFIG, engine="fast",
                      profiler=Profiler())
    result = machine.run(0)
    assert result.vcycles == 0
    assert result.simulation_rate_khz(475.0) == 0.0
    assert result.status() == "did not run (zero Vcycles executed)"


def test_unfinished_run_status():
    machine = Machine(_compiled("mc").program, CONFIG, engine="fast")
    result = machine.run(3)
    assert not result.finished
    assert result.status() == "did not finish (stopped at the 3-Vcycle budget)"
    assert result.simulation_rate_khz(475.0) > 0.0
