"""Parallel compiler phases: jobs=N must be bit-identical to jobs=1,
parallel_map must preserve order, and compile_many must behave like a
loop of compile_circuit.

The persistent pool underneath (``repro.pool``) gets its own regression
class: workers must survive across maps, a crashed worker must be
respawned (transient) or surface :class:`~repro.pool.PoolWorkerLost`
(persistent) — never hang — and ``compile_many``'s spooled path must
stay bit-identical to serial both cold and warm."""

import multiprocessing
import os

import pytest

from repro.compiler import (
    CompilerOptions,
    compile_circuit,
    compile_many,
    parallel_map,
    resolve_jobs,
)
from repro.machine.boot import serialize
from repro.machine.config import MachineConfig, TINY
from repro.fuzz.generator import (
    accumulator_circuit,
    counter_circuit,
    logic_heavy_circuit,
)
from repro.pool import PersistentPool, PoolWorkerLost, task_ref


def _square(x: int) -> int:   # module-level: dispatchable into workers
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom {x}")


def _die_in_worker(x: int) -> int:
    """Kills any pool worker it runs in; harmless in the parent (the
    serial-fallback path and jobs=1 never enter the guard)."""
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return x


def _crash_once(arg) -> int:
    """Dies the first time a worker runs it (flag file absent), then
    succeeds — models a transient worker fault."""
    path, x = arg
    if multiprocessing.parent_process() is not None \
            and not os.path.exists(path):
        open(path, "w").close()
        os._exit(5)
    return x * 2


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        items = list(range(20))
        assert (parallel_map(_square, items, jobs=1)
                == parallel_map(_square, items, jobs=3)
                == [x * x for x in items])

    def test_order_is_input_order(self):
        items = [5, 3, 1, 4, 2]
        assert parallel_map(_square, items, jobs=2) == [25, 9, 1, 16, 4]

    def test_worker_exceptions_propagate(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1, 2, 3], jobs=2)
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1, 2, 3], jobs=1)

    def test_empty_and_singleton(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [7], jobs=4) == [49]

    def test_resolve_jobs(self):
        import os
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-1) == (os.cpu_count() or 1)


class TestJobsDeterminism:
    """compile_circuit(jobs=N) == compile_circuit(jobs=1), bitwise.

    The full nine-design sweep runs in the CI determinism check and in
    ``benchmarks/bench_compile.py``; here small circuits keep tier-1
    fast while still covering custom synthesis (logic_heavy) and carry
    chains (accumulator) across multiple partitions.
    """

    GRID = MachineConfig(grid_x=4, grid_y=4)

    @pytest.mark.parametrize("build", [counter_circuit,
                                       accumulator_circuit,
                                       logic_heavy_circuit])
    def test_bit_identical_program(self, build):
        serial = compile_circuit(
            build(), CompilerOptions(config=self.GRID, jobs=1))
        parallel = compile_circuit(
            build(), CompilerOptions(config=self.GRID, jobs=2))
        assert serialize(parallel.program) == serialize(serial.program)
        assert parallel.report.vcpl == serial.report.vcpl
        assert parallel.report.breakdown == serial.report.breakdown

    def test_negative_jobs_means_cpu_count(self):
        result = compile_circuit(
            counter_circuit(), CompilerOptions(config=TINY, jobs=-1))
        reference = compile_circuit(
            counter_circuit(), CompilerOptions(config=TINY))
        assert serialize(result.program) == serialize(reference.program)


class TestCompileMany:
    def test_results_in_input_order(self):
        circuits = [counter_circuit(), accumulator_circuit(),
                    logic_heavy_circuit()]
        opts = CompilerOptions(config=MachineConfig(grid_x=4, grid_y=4))
        batch = compile_many(circuits, opts, jobs=2)
        singles = [compile_circuit(c, opts) for c in circuits]
        assert [r.report.name for r in batch] == [
            "counter", "accumulator", "logic_heavy"]
        for got, want in zip(batch, singles):
            assert serialize(got.program) == serialize(want.program)

    def test_cache_hits_skip_workers(self, tmp_path):
        opts = CompilerOptions(config=TINY, cache_dir=str(tmp_path))
        first = compile_many([counter_circuit()], opts, jobs=2)
        again = compile_many(
            [counter_circuit(), counter_circuit(limit=5)], opts, jobs=2)
        assert first[0].report.cache["status"] == "miss"
        assert again[0].report.cache["status"] == "hit"
        assert again[1].report.cache["status"] == "miss"
        assert (serialize(again[0].program)
                == serialize(first[0].program))

    def test_defaults_to_options_jobs(self):
        opts = CompilerOptions(config=TINY, jobs=2)
        batch = compile_many([counter_circuit(), counter_circuit(limit=5)],
                             opts)
        assert len(batch) == 2
        assert batch[0].report.name == "counter"


class TestPersistentPool:
    def test_workers_persist_across_maps(self):
        pool = PersistentPool(2)
        try:
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
            pids = pool.ping()
            assert pool.map(_square, [4, 5]) == [16, 25]
            assert pool.ping() == pids, "maps must reuse the same workers"
        finally:
            pool.close()

    def test_task_ref_rejects_unimportable(self):
        import pickle
        assert task_ref(_square) == (__name__, "_square")
        with pytest.raises(pickle.PicklingError):
            task_ref(lambda x: x)

    def test_transient_crash_respawns_and_retries(self, tmp_path):
        pool = PersistentPool(2)
        try:
            items = [(str(tmp_path / f"flag{i}"), i) for i in range(2)]
            assert pool.map(_crash_once, items) == [0, 2]
            assert pool.respawns >= 1
            assert pool.map(_square, [6]) == [36]
        finally:
            pool.close()

    def test_persistent_crash_fails_loudly_not_hangs(self):
        pool = PersistentPool(2)
        try:
            with pytest.raises(PoolWorkerLost, match="died twice"):
                pool.map(_die_in_worker, [1, 2, 3, 4])
            # The pool is still serviceable after the loss.
            assert pool.map(_square, [3, 4]) == [9, 16]
        finally:
            pool.close()

    def test_worker_exception_does_not_kill_worker(self):
        pool = PersistentPool(2)
        try:
            pids = pool.ping()
            with pytest.raises(ValueError, match="boom"):
                pool.map(_boom, [1, 2])
            assert pool.ping() == pids
        finally:
            pool.close()

    def test_parallel_map_survives_worker_loss(self):
        """The compile-phase wrapper falls back to serial when the pool
        fails loudly, so a flaky worker can never fail a compile."""
        assert parallel_map(_die_in_worker, [1, 2, 3], jobs=2) == [1, 2, 3]


class TestPooledCompileDeterminism:
    """jobs=2 on the persistent pool must equal jobs=1, cold and warm."""

    CIRCUITS = staticmethod(lambda: [counter_circuit(),
                                     accumulator_circuit(),
                                     logic_heavy_circuit()])

    def test_spooled_cold_and_warm_bit_identical(self, tmp_path):
        grid = MachineConfig(grid_x=4, grid_y=4)
        serial = [compile_circuit(c, CompilerOptions(config=grid, jobs=1))
                  for c in self.CIRCUITS()]

        opts = CompilerOptions(config=grid, jobs=2,
                               cache_dir=str(tmp_path))
        cold = compile_many(self.CIRCUITS(), opts)
        assert [r.report.cache["status"] for r in cold] == ["miss"] * 3
        for got, want in zip(cold, serial):
            assert serialize(got.program) == serialize(want.program)

        warm = compile_many(self.CIRCUITS(), opts)
        assert [r.report.cache["status"] for r in warm] == ["hit"] * 3
        for got, want in zip(warm, serial):
            assert serialize(got.program) == serialize(want.program)


class TestRuntimeIntegration:
    def test_simulate_with_cache_and_jobs(self, tmp_path):
        from repro.machine.runtime import simulate_on_manticore
        kw = dict(options=CompilerOptions(config=TINY),
                  cache_dir=str(tmp_path), jobs=2)
        cold = simulate_on_manticore(counter_circuit(), **kw)
        warm = simulate_on_manticore(counter_circuit(), **kw)
        assert cold.report.cache["status"] == "miss"
        assert warm.report.cache["status"] == "hit"
        assert warm.displays == cold.displays
        assert warm.vcycles == cold.vcycles
