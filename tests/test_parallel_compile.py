"""Parallel compiler phases: jobs=N must be bit-identical to jobs=1,
parallel_map must preserve order, and compile_many must behave like a
loop of compile_circuit."""

import pytest

from repro.compiler import (
    CompilerOptions,
    compile_circuit,
    compile_many,
    parallel_map,
    resolve_jobs,
)
from repro.machine.boot import serialize
from repro.machine.config import MachineConfig, TINY
from repro.fuzz.generator import (
    accumulator_circuit,
    counter_circuit,
    logic_heavy_circuit,
)


def _square(x: int) -> int:   # module-level: picklable into pool workers
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom {x}")


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        items = list(range(20))
        assert (parallel_map(_square, items, jobs=1)
                == parallel_map(_square, items, jobs=3)
                == [x * x for x in items])

    def test_order_is_input_order(self):
        items = [5, 3, 1, 4, 2]
        assert parallel_map(_square, items, jobs=2) == [25, 9, 1, 16, 4]

    def test_worker_exceptions_propagate(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1, 2, 3], jobs=2)
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1, 2, 3], jobs=1)

    def test_empty_and_singleton(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [7], jobs=4) == [49]

    def test_resolve_jobs(self):
        import os
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-1) == (os.cpu_count() or 1)


class TestJobsDeterminism:
    """compile_circuit(jobs=N) == compile_circuit(jobs=1), bitwise.

    The full nine-design sweep runs in the CI determinism check and in
    ``benchmarks/bench_compile.py``; here small circuits keep tier-1
    fast while still covering custom synthesis (logic_heavy) and carry
    chains (accumulator) across multiple partitions.
    """

    GRID = MachineConfig(grid_x=4, grid_y=4)

    @pytest.mark.parametrize("build", [counter_circuit,
                                       accumulator_circuit,
                                       logic_heavy_circuit])
    def test_bit_identical_program(self, build):
        serial = compile_circuit(
            build(), CompilerOptions(config=self.GRID, jobs=1))
        parallel = compile_circuit(
            build(), CompilerOptions(config=self.GRID, jobs=2))
        assert serialize(parallel.program) == serialize(serial.program)
        assert parallel.report.vcpl == serial.report.vcpl
        assert parallel.report.breakdown == serial.report.breakdown

    def test_negative_jobs_means_cpu_count(self):
        result = compile_circuit(
            counter_circuit(), CompilerOptions(config=TINY, jobs=-1))
        reference = compile_circuit(
            counter_circuit(), CompilerOptions(config=TINY))
        assert serialize(result.program) == serialize(reference.program)


class TestCompileMany:
    def test_results_in_input_order(self):
        circuits = [counter_circuit(), accumulator_circuit(),
                    logic_heavy_circuit()]
        opts = CompilerOptions(config=MachineConfig(grid_x=4, grid_y=4))
        batch = compile_many(circuits, opts, jobs=2)
        singles = [compile_circuit(c, opts) for c in circuits]
        assert [r.report.name for r in batch] == [
            "counter", "accumulator", "logic_heavy"]
        for got, want in zip(batch, singles):
            assert serialize(got.program) == serialize(want.program)

    def test_cache_hits_skip_workers(self, tmp_path):
        opts = CompilerOptions(config=TINY, cache_dir=str(tmp_path))
        first = compile_many([counter_circuit()], opts, jobs=2)
        again = compile_many(
            [counter_circuit(), counter_circuit(limit=5)], opts, jobs=2)
        assert first[0].report.cache["status"] == "miss"
        assert again[0].report.cache["status"] == "hit"
        assert again[1].report.cache["status"] == "miss"
        assert (serialize(again[0].program)
                == serialize(first[0].program))

    def test_defaults_to_options_jobs(self):
        opts = CompilerOptions(config=TINY, jobs=2)
        batch = compile_many([counter_circuit(), counter_circuit(limit=5)],
                             opts)
        assert len(batch) == 2
        assert batch[0].report.name == "counter"


class TestRuntimeIntegration:
    def test_simulate_with_cache_and_jobs(self, tmp_path):
        from repro.machine.runtime import simulate_on_manticore
        kw = dict(options=CompilerOptions(config=TINY),
                  cache_dir=str(tmp_path), jobs=2)
        cold = simulate_on_manticore(counter_circuit(), **kw)
        warm = simulate_on_manticore(counter_circuit(), **kw)
        assert cold.report.cache["status"] == "miss"
        assert warm.report.cache["status"] == "hit"
        assert warm.displays == cold.displays
        assert warm.vcycles == cold.vcycles
