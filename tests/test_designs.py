"""Tests for the nine benchmark designs and the Fig. 8 microbenchmarks.

Every design carries its own assertion-based driver comparing against a
Python reference model, so a clean golden-interpreter run *is* the
functional check.  A subset is additionally compiled and executed on the
cycle-accurate Manticore machine (full differential coverage of the big
designs lives in the slower benchmark harness).
"""

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.designs import DESIGNS, bc, blur, cgra, jpeg, mc, micro, mm, nocsim, rv32r, vta
from repro.machine import Machine, MachineConfig
from repro.netlist import NetlistInterpreter, run_circuit


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_design_passes_reference_checks(name):
    info = DESIGNS[name]
    result = run_circuit(info.build(), info.cycles + 300)
    assert result.finished, f"{name} did not finish"
    assert result.displays, f"{name} produced no output"


class TestDesignDetails:
    def test_bc_reports_golden_nonces(self):
        result = run_circuit(bc.build(rounds=12, difficulty_bits=7), 600)
        nonces = [int(d.split()[2]) for d in result.displays]
        for nonce in nonces:
            assert bc.sha_rounds_reference(nonce, 12) & 0x7F == 0

    def test_bc_difficulty_filters(self):
        # Higher difficulty yields a subset of lower-difficulty hits.
        lo = run_circuit(bc.build(rounds=12, difficulty_bits=4), 400)
        hi = run_circuit(bc.build(rounds=12, difficulty_bits=7), 400)
        lo_nonces = {d.split()[2] for d in lo.displays}
        hi_nonces = {d.split()[2] for d in hi.displays}
        assert hi_nonces <= lo_nonces

    def test_mm_checksum_matches_reference(self):
        a, b = mm.test_matrices(4)
        product = mm.reference_product(a, b)
        expected = sum(sum(row) for row in product) & 0xFFFFFFFF
        result = run_circuit(mm.build(n=4), 200)
        assert result.displays == [f"mm checksum {expected}"]

    def test_mc_walker_independence(self):
        # The sum over w walkers equals the sum of per-walker models.
        assert mc.reference_sum(4, 16) == sum(
            mc.reference_sum(w + 1, 16) - mc.reference_sum(w, 16)
            for w in range(4)
        ) & 0xFFFFFFFF

    def test_jpeg_is_serial(self):
        # The decoded symbol count grows with the bit budget.
        c64, _ = jpeg.reference_decode(64)
        c128, _ = jpeg.reference_decode(128)
        assert 0 < c64 < c128

    def test_blur_checksum_nonzero(self):
        assert blur.reference_checksum(8, 8) > 0

    def test_nocsim_delivery(self):
        count, _sig = nocsim.reference_signature(3, 3, 2, 48)
        assert count > 0

    def test_rv32r_cores_diverge(self):
        finals = rv32r.reference_final_r0(4, 8)
        assert len(set(finals)) > 1  # cores compute different values

    def test_vta_reference_scales(self):
        small = vta.reference_checksum(1, 2, 2)
        large = vta.reference_checksum(2, 4, 4)
        assert small != large

    def test_parameterization(self):
        # Every design builds at a smaller-than-default scale too.
        run_circuit(vta.build(batch=1, block_in=2, block_out=2), 64)
        run_circuit(mm.build(n=2), 64)
        run_circuit(mc.build(walkers=2, steps=8), 32)
        run_circuit(cgra.build(rows=2, cols=2, steps=8), 32)
        run_circuit(rv32r.build(num_cores=2, iterations=2), 128)
        run_circuit(nocsim.build(nx=2, ny=2, vcs=1, steps=8), 32)
        run_circuit(bc.build(rounds=2, difficulty_bits=2, max_cycles=32), 64)
        run_circuit(blur.build(width=4, height=4), 32)
        run_circuit(jpeg.build(num_bits=32), 64)


class TestMicrobenchmarks:
    def test_fifo_local(self):
        result = run_circuit(micro.build_fifo(1024, cycles=256), 300)
        assert result.finished

    def test_ram_local(self):
        result = run_circuit(micro.build_ram(1024, cycles=256), 300)
        assert result.finished

    def test_large_memories_marked_global(self):
        from repro.compiler import lower_circuit, optimize
        big = lower_circuit(optimize(
            micro.build_ram(64 * 1024, cycles=16)))
        assert any(layout.is_global
                   for layout in big.memories.values())
        small = lower_circuit(optimize(
            micro.build_ram(1024, cycles=16)))
        assert not any(layout.is_global
                       for layout in small.memories.values())


# Designs small enough to compile + machine-run quickly in unit tests.
_COMPILED = {
    "jpeg": {},
    "blur": {},
    "cgra": {"rows": 3, "cols": 3, "steps": 24},
    "mm": {"n": 4},
    "mc": {"walkers": 4, "steps": 24},
    "rv32r": {"num_cores": 3, "iterations": 4},
    "vta": {"batch": 2, "block_in": 4, "block_out": 4},
    "bc": {"rounds": 4, "difficulty_bits": 4, "max_cycles": 128},
    "noc": {"nx": 2, "ny": 2, "vcs": 2, "steps": 24},
}

_BUILDERS = {
    "jpeg": jpeg.build, "blur": blur.build, "cgra": cgra.build,
    "mm": mm.build, "mc": mc.build, "rv32r": rv32r.build,
    "vta": vta.build, "bc": bc.build, "noc": nocsim.build,
}


@pytest.mark.parametrize("name", sorted(_COMPILED))
def test_design_compiles_and_matches_machine(name):
    params = _COMPILED[name]
    config = MachineConfig(grid_x=4, grid_y=4)
    golden = NetlistInterpreter(_BUILDERS[name](**params)).run(1500)
    result = compile_circuit(_BUILDERS[name](**params),
                             CompilerOptions(config=config))
    machine = Machine(result.program, config)
    mres = machine.run(1500)
    assert mres.displays == golden.displays
    assert mres.vcycles == golden.cycles
    assert mres.finished == golden.finished


class TestDesignScaling:
    """Designs must build and pass their drivers at larger-than-default
    parameterizations too (the knobs EXPERIMENTS.md's scale discussion
    relies on)."""

    def test_mm_larger(self):
        result = run_circuit(mm.build(n=12), 100)
        assert result.finished

    def test_mc_more_walkers(self):
        result = run_circuit(mc.build(walkers=48, steps=32), 100)
        assert result.finished

    def test_bc_more_rounds(self):
        result = run_circuit(
            bc.build(rounds=16, difficulty_bits=4, max_cycles=64), 100)
        assert result.finished

    def test_vta_larger_block(self):
        result = run_circuit(vta.build(batch=4, block_in=8,
                                       block_out=16), 1200)
        assert result.finished

    def test_cgra_wider(self):
        result = run_circuit(cgra.build(rows=12, cols=12, steps=24), 64)
        assert result.finished
