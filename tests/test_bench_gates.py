"""The bench_compile pool gate arms (and skips) for the right reasons.

``benchmarks/bench_compile.py`` enforces a >=1.5x pooled-batch-compile
speedup, but only on machines with >= 2 CPUs — a persistent pool cannot
beat a serial loop on one core.  These tests pin the arming logic and
its skip wording through ``pool_gate_status`` with explicit and mocked
CPU counts, so a 1-CPU CI box records numbers without failing and a
multi-core box cannot silently skip the gate.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCH = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def bench_compile():
    spec = importlib.util.spec_from_file_location(
        "bench_compile", _BENCH / "bench_compile.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_compile"] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop("bench_compile", None)


@pytest.mark.parametrize("cpus,expect_armed", [
    (1, False),
    (2, True),
    (4, True),
    (64, True),
])
def test_pool_gate_arms_at_two_cpus(bench_compile, cpus, expect_armed):
    armed, label = bench_compile.pool_gate_status(cpus=cpus)
    assert armed == expect_armed
    if armed:
        assert label == f">={bench_compile.POOL_GATE}x"
    else:
        assert label.startswith("skipped")


def test_pool_gate_skip_text_names_the_real_reason(bench_compile):
    """The skip label must describe the persistent pool's actual
    constraint (needs a second core), not a stale mechanism."""
    _, label = bench_compile.pool_gate_status(cpus=1)
    assert "fork-per-call" not in label
    assert "persistent-pool" in label
    assert "1 cpu" in label
    assert str(bench_compile.POOL_GATE_MIN_CPUS) in label


def test_pool_gate_default_reads_cpu_count(bench_compile, monkeypatch):
    """``cpus=None`` consults os.cpu_count() — mocked both ways."""
    monkeypatch.setattr(bench_compile.os, "cpu_count", lambda: 1)
    armed, label = bench_compile.pool_gate_status()
    assert not armed and "skipped (1 cpu" in label

    monkeypatch.setattr(bench_compile.os, "cpu_count", lambda: 8)
    armed, label = bench_compile.pool_gate_status()
    assert armed and label == f">={bench_compile.POOL_GATE}x"

    # cpu_count() can return None (the stdlib allows it): treat as 1.
    monkeypatch.setattr(bench_compile.os, "cpu_count", lambda: None)
    armed, _ = bench_compile.pool_gate_status()
    assert not armed
